//! The journal-replay property: crash recovery must be outcome-preserving.
//!
//! `fl-flpd` promises that an epoch interrupted by `kill -9` recovers to
//! a decision *bit-identical* to the fault-free one: the write-ahead
//! journal records the exact bid set, and `A_FL` is deterministic on it.
//! This module certifies that promise per instance, without any TCP or
//! fault timing in the way:
//!
//! 1. synthesise the journal a daemon would have written for the
//!    instance up to and including `close_begin` — the worst crash
//!    point, where the close intent is durable but no decision is;
//! 2. recover a [`ServerCore`] from it, which re-solves the pending
//!    epoch, and compare the served outcome against a fresh in-process
//!    `run_auction` on the same instance — committed outcomes must match
//!    on their lossless serialisation, payments to the bit, and an
//!    infeasible reference must surface as an explicit abort;
//! 3. recover *again* from the now-extended journal (which gained a
//!    `close_commit`) and require the identical decision — the
//!    replay-from-commit path must agree with the re-solve path;
//! 4. require the final journal to scan clean: no torn frames.

use std::collections::HashMap;

use fl_auction::{
    run_auction, serial, AuctionError, AuctionOutcome, LocalIterationModel, QualifyMode,
};
use fl_flpd::journal::{encode_record, scan_bytes, Durability, Record};
use fl_flpd::session::{HandleResult, Limits, ServerCore};
use fl_flpd::wire::OpenParams;
use fl_telemetry::json::{self, Json};

use crate::gen::CertInstance;
use crate::props::{prop, Violation};

/// The session id used in the synthesised journal.
const SESSION: &str = "s-1";

/// Checks the journal-replay invariant for one instance. An instance
/// that fails its own validation is skipped (that is [`prop::INVALID`]'s
/// job, not this property's).
pub fn check_replay(ci: &CertInstance) -> Vec<Violation> {
    let mut v = Vec::new();
    let Ok(instance) = ci.to_instance() else {
        return v;
    };
    let reference = match run_auction(&instance) {
        Ok(outcome) => Some(outcome),
        Err(AuctionError::Infeasible) => None,
        Err(e) => {
            v.push(bad(format!("reference solve failed: {e}")));
            return v;
        }
    };

    let dir = fl_flpd::testutil::TempDir::new("certify-replay");
    let path = dir.path().join("wal.jsonl");
    if let Err(e) = std::fs::write(&path, journal_bytes(ci)) {
        v.push(bad(format!("writing synthetic journal: {e}")));
        return v;
    }

    // Pass 1: recovery must re-solve the pending close.
    match recover_outcome(&path) {
        Ok((outcome, report_replayed)) => {
            if report_replayed != 1 {
                v.push(bad(format!(
                    "expected exactly one re-solved close, recovery reported {report_replayed}"
                )));
            }
            compare(&reference, &outcome, "re-solve", &mut v);
            verify_payments(&path, &reference, ci, &mut v);
        }
        Err(e) => v.push(bad(format!("first recovery: {e}"))),
    }

    // Pass 2: the journal now carries the commit; replaying it must
    // serve the identical decision without another solve.
    match recover_outcome(&path) {
        Ok((outcome, report_replayed)) => {
            if report_replayed != 0 {
                v.push(bad(format!(
                    "commit already journaled but recovery re-solved {report_replayed} epochs"
                )));
            }
            compare(&reference, &outcome, "commit-replay", &mut v);
        }
        Err(e) => v.push(bad(format!("second recovery: {e}"))),
    }

    // The journal must end the exercise clean.
    match std::fs::read(&path) {
        Ok(bytes) => {
            if scan_bytes(&bytes).torn {
                v.push(bad("journal left torn after recovery".into()));
            }
        }
        Err(e) => v.push(bad(format!("reading back journal: {e}"))),
    }
    v
}

fn bad(detail: String) -> Violation {
    Violation {
        property: prop::JOURNAL_REPLAY,
        detail,
    }
}

/// The journal a daemon would have durably written by the moment the
/// fatal crash hits: open, every profile, every bid, and the close
/// intent — but no decision.
fn journal_bytes(ci: &CertInstance) -> Vec<u8> {
    let (model, param) = match ci.model {
        LocalIterationModel::Linear { scale } => ("linear", scale),
        LocalIterationModel::LogInverse { eta } => ("log", eta),
    };
    let qualify = match ci.qualify {
        QualifyMode::Intent => "intent",
        QualifyMode::Literal => "literal",
    };
    let params = OpenParams {
        nonce: 1,
        t: ci.t,
        k: ci.k,
        t_max: ci.t_max,
        model: model.into(),
        param,
        qualify: qualify.into(),
        threads: 1,
        budget: None,
    };
    let mut records = vec![Record::Open {
        session: SESSION.into(),
        params,
    }];
    let mut seq = 0u64;
    for &(t_cmp, t_com) in &ci.clients {
        seq += 1;
        records.push(Record::Client {
            session: SESSION.into(),
            seq,
            t_cmp,
            t_com,
        });
    }
    for b in &ci.bids {
        seq += 1;
        records.push(Record::Bid {
            session: SESSION.into(),
            seq,
            client: b.client,
            price: b.price,
            theta: b.theta,
            a: b.a,
            d: b.d,
            c: b.c,
        });
    }
    seq += 1;
    records.push(Record::CloseBegin {
        session: SESSION.into(),
        seq,
    });
    records.iter().flat_map(encode_record).collect()
}

/// Recovers a core from `path` and queries the epoch decision. Returns
/// the served outcome (`None` = explicit abort) and how many closes the
/// recovery had to re-solve.
fn recover_outcome(path: &std::path::Path) -> Result<(Option<AuctionOutcome>, usize), String> {
    let (core, report) = ServerCore::recover(path, Durability::Strict, None, Limits::default())
        .map_err(|e| e.to_string())?;
    let doc = ask(
        &core,
        &format!(r#"{{"op":"outcome","session":"{SESSION}"}}"#),
    )?;
    match doc.get("status").and_then(Json::as_str) {
        Some("committed") => {
            let outcome = doc
                .get("outcome")
                .ok_or("committed reply without outcome")?;
            let outcome =
                serial::outcome_from_value(outcome).map_err(|e| format!("bad outcome: {e}"))?;
            Ok((Some(outcome), report.replayed_closes))
        }
        Some("aborted") => Ok((None, report.replayed_closes)),
        other => Err(format!("outcome reply with status {other:?}")),
    }
}

fn ask(core: &ServerCore, payload: &str) -> Result<Json, String> {
    match core.handle(payload) {
        HandleResult::Reply(resp) => json::parse(&resp),
        other => Err(format!("unexpected handler result: {other:?}")),
    }
}

/// Committed ≡ committed bit-identically; infeasible ≡ aborted.
fn compare(
    reference: &Option<AuctionOutcome>,
    recovered: &Option<AuctionOutcome>,
    pass: &str,
    v: &mut Vec<Violation>,
) {
    match (reference, recovered) {
        (Some(want), Some(got)) => {
            let want = serial::outcome_to_json(want);
            let got = serial::outcome_to_json(got);
            if want != got {
                v.push(bad(format!(
                    "{pass}: recovered outcome diverged from the fresh solve: {got} vs {want}"
                )));
            }
        }
        (None, None) => {}
        (want, got) => v.push(bad(format!(
            "{pass}: decision flipped — fresh solve {}, recovery {}",
            decision(want),
            decision(got)
        ))),
    }
}

fn decision(o: &Option<AuctionOutcome>) -> &'static str {
    if o.is_some() {
        "committed"
    } else {
        "aborted"
    }
}

/// Per-client payment totals served after recovery must equal a fold
/// over the fresh outcome's winners, bit for bit.
fn verify_payments(
    path: &std::path::Path,
    reference: &Option<AuctionOutcome>,
    ci: &CertInstance,
    v: &mut Vec<Violation>,
) {
    let Some(reference) = reference else {
        return;
    };
    let Ok((core, _)) = ServerCore::recover(path, Durability::Strict, None, Limits::default())
    else {
        return; // already reported by the caller's recovery pass
    };
    let mut expected: HashMap<u32, f64> = HashMap::new();
    for c in 0..ci.clients.len() as u32 {
        // Same fold (identity 0.0, winner order) as the daemon's payment
        // handler, so equality is bitwise.
        let total = reference
            .solution()
            .winners()
            .iter()
            .filter(|w| w.bid_ref.client.0 == c)
            .fold(0.0f64, |acc, w| acc + w.payment);
        expected.insert(c, total);
    }
    for (client, want) in expected {
        let req = format!(r#"{{"op":"payment","session":"{SESSION}","client":{client}}}"#);
        match ask(&core, &req) {
            Ok(doc) => match doc.get("total").and_then(Json::as_f64) {
                Some(got) if got.to_bits() == want.to_bits() => {}
                Some(got) => v.push(bad(format!(
                    "client {client}: recovered payment {got} but fresh solve pays {want}"
                ))),
                None => v.push(bad(format!("client {client}: payment reply without total"))),
            },
            Err(e) => v.push(bad(format!("client {client}: payment query failed: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn generated_seeds_replay_clean() {
        for seed in 0..6 {
            let violations = check_replay(&generate(seed));
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn synthetic_journal_parses_back() {
        let ci = generate(3);
        let bytes = journal_bytes(&ci);
        let scan = scan_bytes(&bytes);
        assert!(!scan.torn);
        // open + clients + bids + close_begin
        assert_eq!(scan.records.len(), 1 + ci.clients.len() + ci.bids.len() + 1);
    }
}

//! Greedy counterexample minimisation.
//!
//! When the fuzzer finds a violation, the raw instance is rarely the story
//! — the story is the three-bid core buried inside it. [`minimise`] shrinks
//! an instance while preserving *the same failing property code*: each
//! round it tries a list of simplifying transformations (drop a client,
//! drop a bid, shorten the horizon, relax a window, round a price, …) in
//! aggressiveness order and keeps the first one that still fails. The loop
//! stops at a fixpoint: no single transformation reproduces the failure.
//!
//! Transformed instances that become structurally invalid are harmless:
//! [`check`] classifies them as [`prop::INVALID`](crate::props::prop),
//! which never equals the property being preserved, so the candidate is
//! simply rejected.

use crate::gen::CertInstance;
use crate::props::check;

/// Shrinks `ci` to a (locally) minimal instance that still violates
/// `property`. Returns the input unchanged when it does not fail in the
/// first place.
pub fn minimise(ci: &CertInstance, property: &str) -> CertInstance {
    let fails = |c: &CertInstance| check(c).violations.iter().any(|v| v.property == property);
    let mut current = ci.clone();
    if !fails(&current) {
        return current;
    }
    loop {
        let mut shrunk = false;
        for candidate in candidates(&current) {
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    current.note = format!("minimised for {property}");
    current
}

/// Candidate one-step simplifications, most aggressive first.
fn candidates(ci: &CertInstance) -> Vec<CertInstance> {
    let mut out = Vec::new();

    // Drop a whole client (and its bids; higher indices shift down).
    if ci.clients.len() > 1 {
        for drop in 0..ci.clients.len() {
            let mut c = ci.clone();
            c.clients.remove(drop);
            c.bids.retain(|b| b.client as usize != drop);
            for b in &mut c.bids {
                if b.client as usize > drop {
                    b.client -= 1;
                }
            }
            out.push(c);
        }
    }

    // Drop a single bid.
    if ci.bids.len() > 1 {
        for drop in 0..ci.bids.len() {
            let mut c = ci.clone();
            c.bids.remove(drop);
            out.push(c);
        }
    }

    // Shorten the horizon, lower the demand.
    if ci.t > 1 {
        let mut c = ci.clone();
        c.t -= 1;
        out.push(c);
    }
    if ci.k > 1 {
        let mut c = ci.clone();
        c.k -= 1;
        out.push(c);
    }

    // Per-bid structural simplifications.
    for i in 0..ci.bids.len() {
        let b = &ci.bids[i];
        if b.c > 1 {
            let mut c = ci.clone();
            c.bids[i].c -= 1;
            out.push(c);
        }
        if b.d > b.a && b.d - b.a >= b.c {
            let mut c = ci.clone();
            c.bids[i].d -= 1;
            out.push(c);
        }
        if b.a < b.d && b.d - b.a >= b.c {
            let mut c = ci.clone();
            c.bids[i].a += 1;
            out.push(c);
        }
        if b.price != b.price.floor() {
            let mut c = ci.clone();
            c.bids[i].price = b.price.floor().max(0.0);
            out.push(c);
        }
        if b.price > 1.0 {
            let mut c = ci.clone();
            c.bids[i].price = 1.0;
            out.push(c);
        }
        if b.theta != 0.5 {
            let mut c = ci.clone();
            c.bids[i].theta = 0.5;
            out.push(c);
        }
    }

    // Flatten incidental configuration.
    if ci.clients.iter().any(|&p| p != (1.0, 1.0)) {
        let mut c = ci.clone();
        for p in &mut c.clients {
            *p = (1.0, 1.0);
        }
        out.push(c);
    }
    if ci.t_max != 60.0 {
        let mut c = ci.clone();
        c.t_max = 60.0;
        out.push(c);
    }
    if ci.model != fl_auction::LocalIterationModel::paper() {
        let mut c = ci.clone();
        c.model = fl_auction::LocalIterationModel::paper();
        out.push(c);
    }
    if ci.qualify != fl_auction::QualifyMode::Intent {
        let mut c = ci.clone();
        c.qualify = fl_auction::QualifyMode::Intent;
        out.push(c);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, CertBid};
    use crate::props::prop;

    #[test]
    fn clean_instance_passes_through_unchanged() {
        let ci = generate(0);
        let out = minimise(&ci, prop::GREEDY_BELOW_OPT);
        assert_eq!(out, ci);
    }

    #[test]
    fn invalid_instance_minimises_to_a_tiny_core() {
        // Plant an invalid accuracy inside a noisy instance: the minimiser
        // must strip everything that is not needed to stay invalid.
        let mut ci = generate(1);
        ci.bids.push(CertBid {
            client: 0,
            price: 2.0,
            theta: 1.5, // invalid on purpose
            a: 1,
            d: 1,
            c: 1,
        });
        let out = minimise(&ci, prop::INVALID);
        assert_eq!(out.bids.len(), 1, "{out:?}");
        assert_eq!(out.clients.len(), 1, "{out:?}");
        assert_eq!(out.t, 1, "{out:?}");
        assert_eq!(out.bids[0].theta, 1.5, "the defect must survive");
        assert_eq!(out.note, format!("minimised for {}", prop::INVALID));
        let report = check(&out);
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == prop::INVALID));
    }

    #[test]
    fn minimisation_is_idempotent() {
        let mut ci = generate(1);
        ci.bids[0].theta = -0.25;
        let once = minimise(&ci, prop::INVALID);
        let twice = minimise(&once, prop::INVALID);
        assert_eq!(once, twice);
    }
}

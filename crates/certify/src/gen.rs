//! Deterministic seeded instance generation across degenerate shapes.
//!
//! Every instance the fuzzer examines is a pure function of its seed: the
//! seed picks a [`Shape`] (a family of degenerate structures that has
//! historically broken greedy/payment code — `K = 1`, single-bid clients,
//! tight windows, all-tie prices, `T_0 == T`, monopolists) and then fills
//! in small parameters. Sizes are capped (≤ 6 rounds, ≤ 12 bids, `K ≤ 3`)
//! so the exhaustive [`fl_exact::BruteForceSolver`] stays viable as the
//! differential yardstick on every generated instance.

use fl_auction::{
    AuctionConfig, AuctionError, Bid, ClientId, ClientProfile, Instance, LocalIterationModel,
    QualifyMode, Round, Window,
};

/// SplitMix64: a tiny, fast, seedable PRNG (Steele–Lea–Flood constants).
/// Chosen over the vendored `rand` shim because its output is a fixed
/// public algorithm — a corpus seed must reproduce the same instance
/// forever, on every platform, regardless of what the shim does.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n = 0` is treated as 1.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform draw in `[lo, hi]` (inclusive). `lo` must not exceed `hi`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + self.below(u64::from(hi - lo + 1)) as u32
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// The degenerate instance families the fuzzer cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Fully random small instance (the control group).
    Uniform,
    /// `K = 1`: a single client per round, so every selection is decisive.
    K1,
    /// Exactly one bid per client: no sibling-bid interactions.
    SingleBid,
    /// `c == window length` for every bid: schedules have no slack.
    TightWindows,
    /// Prices drawn from `{1, 2, 3}` plus occasional zero prices: every
    /// comparison is a tie-break.
    Ties,
    /// Every accuracy is exactly `1 − 1/T`, so only the last horizon
    /// qualifies (`T_0 == T`).
    T0EqT,
    /// One or two clients with `K = 1`: monopolist payment edge cases.
    Monopolist,
}

impl Shape {
    /// Every shape, in the order seeds cycle through them.
    pub const ALL: [Shape; 7] = [
        Shape::Uniform,
        Shape::K1,
        Shape::SingleBid,
        Shape::TightWindows,
        Shape::Ties,
        Shape::T0EqT,
        Shape::Monopolist,
    ];

    /// Stable name used in the serialised corpus format.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Uniform => "uniform",
            Shape::K1 => "k1",
            Shape::SingleBid => "single_bid",
            Shape::TightWindows => "tight_windows",
            Shape::Ties => "ties",
            Shape::T0EqT => "t0_eq_t",
            Shape::Monopolist => "monopolist",
        }
    }
}

/// One bid row of a serialisable certifier instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CertBid {
    /// Index into [`CertInstance::clients`].
    pub client: u32,
    /// Claimed cost `b_ij`.
    pub price: f64,
    /// Local accuracy `θ_ij ∈ (0, 1)`.
    pub theta: f64,
    /// Window start `a_ij` (1-based).
    pub a: u32,
    /// Window end `d_ij` (inclusive; may extend past `T`).
    pub d: u32,
    /// Participation rounds `c_ij`.
    pub c: u32,
}

/// A self-contained, serialisable auction instance: everything needed to
/// replay one certifier check, in plain-old-data form so it can round-trip
/// through the one-line JSON corpus format (see [`crate::corpus`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CertInstance {
    /// The generator seed (0 for hand-written corpus entries).
    pub seed: u64,
    /// The [`Shape`] name this instance was drawn from.
    pub shape: String,
    /// Free-text provenance (e.g. what bug a corpus entry pinned).
    pub note: String,
    /// Maximum global iterations `T`.
    pub t: u32,
    /// Clients required per round `K`.
    pub k: u32,
    /// Per-round wall-clock limit `t_max`.
    pub t_max: f64,
    /// The local-iteration model.
    pub model: LocalIterationModel,
    /// The qualification reading.
    pub qualify: QualifyMode,
    /// `(compute_time, comm_time)` per client.
    pub clients: Vec<(f64, f64)>,
    /// All submitted bids.
    pub bids: Vec<CertBid>,
    /// The online knob: `Some(B)` additionally replays the bids as an
    /// arrival stream through [`fl_auction::OnlineAuction`] under budget
    /// `B` and checks the online properties (budget feasibility, online
    /// IR, posted-price truthfulness, incremental ≡ batch qualification).
    /// `B` may be `0` (degenerate: only zero-priced bids can commit) or
    /// `+∞` (disables the budget and price gates). `None` certifies the
    /// batch mechanism only.
    pub online_budget: Option<f64>,
}

impl CertInstance {
    /// Materialises the `fl-auction` [`Instance`].
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] when any field violates
    /// the instance contracts (bad window, accuracy outside `(0, 1)`,
    /// unknown client index, …) — hand-edited corpus files go through the
    /// same validation as API users.
    pub fn to_instance(&self) -> Result<Instance, AuctionError> {
        let cfg = AuctionConfig::builder()
            .max_rounds(self.t)
            .clients_per_round(self.k)
            .round_time_limit(self.t_max)
            .local_model(self.model)
            .qualify_mode(self.qualify)
            .build()?;
        let mut inst = Instance::new(cfg);
        for &(compute, comm) in &self.clients {
            inst.add_client(ClientProfile::new(compute, comm)?);
        }
        for b in &self.bids {
            // Window::new panics on inverted input; validate first so a
            // hostile corpus file reports an error instead.
            if b.a == 0 || b.d < b.a {
                return Err(AuctionError::InvalidInstance(format!(
                    "bid window [{}, {}] is not a valid round range",
                    b.a, b.d
                )));
            }
            let bid = Bid::new(b.price, b.theta, Window::new(Round(b.a), Round(b.d)), b.c)?;
            inst.add_bid(ClientId(b.client), bid)?;
        }
        Ok(inst)
    }
}

/// Generates the deterministic instance for `seed`.
pub fn generate(seed: u64) -> CertInstance {
    let mut rng = SplitMix64::new(seed);
    let shape = *rng.pick(&Shape::ALL);
    let t = rng.range(2, 6);
    let k = match shape {
        Shape::K1 | Shape::Monopolist => 1,
        _ => rng.range(1, 3),
    };
    let n_clients = match shape {
        Shape::Monopolist => rng.range(1, 2),
        _ => rng.range(k.max(2), 6),
    };
    let t_max = if rng.chance(1, 5) { 12.0 } else { 60.0 };
    let model = if rng.chance(1, 4) {
        LocalIterationModel::LogInverse { eta: 2.0 }
    } else {
        LocalIterationModel::paper()
    };
    let qualify = if rng.chance(1, 6) {
        QualifyMode::Literal
    } else {
        QualifyMode::Intent
    };
    let theta_last = 1.0 - 1.0 / f64::from(t);

    let clients: Vec<(f64, f64)> = (0..n_clients)
        .map(|_| (0.5 + 0.5 * rng.below(5) as f64, 1.0 + rng.below(4) as f64))
        .collect();

    let mut bids = Vec::new();
    for ci in 0..n_clients {
        let n_bids = match shape {
            Shape::SingleBid | Shape::Monopolist => 1,
            _ => rng.range(1, 2),
        };
        for _ in 0..n_bids {
            let a = rng.range(1, t);
            let mut d = rng.range(a, t.min(a + 3));
            if rng.chance(1, 8) {
                // Window escaping the horizon: qualification must truncate.
                d = t + rng.range(1, 2);
            }
            let len = d - a + 1;
            let c = match shape {
                Shape::TightWindows => len,
                _ => rng.range(1, len),
            };
            let theta = match shape {
                Shape::T0EqT => theta_last,
                _ => *rng.pick(&[0.2, 0.3, 0.4, 0.5, 0.5, 0.6, 0.75, theta_last]),
            };
            let price = match shape {
                Shape::Ties => {
                    if rng.chance(1, 10) {
                        0.0
                    } else {
                        *rng.pick(&[1.0, 2.0, 3.0])
                    }
                }
                _ => {
                    let raw = (1 + rng.below(40)) as f64;
                    if rng.chance(1, 3) {
                        raw / 4.0
                    } else {
                        raw
                    }
                }
            };
            bids.push(CertBid {
                client: ci,
                price,
                theta,
                a,
                d,
                c,
            });
        }
    }
    if shape == Shape::Ties && bids.len() > 1 && rng.chance(1, 2) {
        // Maximum tie pressure: every bid at the same price.
        let p = bids[0].price;
        for b in &mut bids {
            b.price = p;
        }
    }

    // The online knob draws from a *forked* RNG so attaching it did not
    // remap any seed's batch instance: every field above is produced by
    // the exact byte-for-byte draws it always was.
    let mut online_rng = SplitMix64::new(seed ^ ONLINE_SALT);
    let online_budget = if online_rng.chance(1, 2) {
        None
    } else if online_rng.chance(1, 8) {
        Some(0.0) // degenerate: a zero offer
    } else if online_rng.chance(1, 6) {
        Some(f64::INFINITY) // gates off: the threshold-equivalence regime
    } else {
        Some((1 + online_rng.below(60)) as f64)
    };

    CertInstance {
        seed,
        shape: shape.name().to_string(),
        note: String::new(),
        t,
        k,
        t_max,
        model,
        qualify,
        clients,
        bids,
        online_budget,
    }
}

/// XOR salt forking the online-knob RNG off the instance seed.
const ONLINE_SALT: u64 = 0x6f6e_6c69_6e65; // "online"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 1, 7, 42, 12345] {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn generated_instances_are_valid_and_small() {
        for seed in 0..300 {
            let ci = generate(seed);
            let inst = ci
                .to_instance()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(inst.num_bids() <= 12, "seed {seed}: too many bids");
            assert!(inst.config().max_rounds() <= 6);
            assert!(inst.config().clients_per_round() <= 3);
        }
    }

    #[test]
    fn seeds_cover_every_shape() {
        let mut seen: Vec<&str> = Vec::new();
        for seed in 0..100 {
            let ci = generate(seed);
            if !seen.contains(&ci.shape.as_str()) {
                seen.push(
                    Shape::ALL
                        .iter()
                        .find(|s| s.name() == ci.shape)
                        .expect("generated shape must be a known shape")
                        .name(),
                );
            }
        }
        assert_eq!(seen.len(), Shape::ALL.len(), "shapes seen: {seen:?}");
    }

    #[test]
    fn online_knob_covers_batch_degenerate_infinite_and_finite() {
        let (mut none, mut zero, mut inf, mut finite) = (0, 0, 0, 0);
        for seed in 0..200 {
            match generate(seed).online_budget {
                None => none += 1,
                Some(0.0) => zero += 1,
                Some(b) if b.is_infinite() => inf += 1,
                Some(_) => finite += 1,
            }
        }
        assert!(
            none > 0 && zero > 0 && inf > 0 && finite > 0,
            "knob coverage: none={none} zero={zero} inf={inf} finite={finite}"
        );
    }

    #[test]
    fn invalid_hand_written_instance_is_an_error_not_a_panic() {
        let mut ci = generate(0);
        ci.bids[0].a = 5;
        ci.bids[0].d = 2; // inverted window
        assert!(ci.to_instance().is_err());
    }
}

//! `fl-certify` — the mechanism certifier: differential fuzzing of `A_FL`
//! against the exact solvers, with a shrinking minimiser and a committed
//! counterexample corpus.
//!
//! The auction stack makes strong claims — near-optimality with a
//! per-instance dual certificate, truthfulness, individual rationality —
//! and this crate is the machinery that *checks* them, instance by
//! instance, against ground truth:
//!
//! * [`gen`] draws small, deterministic instances from degenerate shape
//!   families (`K = 1`, single-bid clients, tight windows, all-tie prices,
//!   `T_0 == T`, monopolists) — every instance is a pure function of its
//!   seed.
//! * [`props`] runs the property engine: differential optimality against
//!   [`fl_exact`]'s two provers, Myerson-threshold truthfulness probes,
//!   loser monotonicity, payment identities, and all of `fl_auction`'s
//!   ILP/IR/certificate verifiers.
//! * [`replay`] certifies the `fl-flpd` journal-replay invariant: an
//!   epoch recovered from the service's write-ahead journal must be
//!   bit-identical to a fresh solve on the recorded bid set.
//! * [`shrink`] minimises any failure to a locally minimal core that still
//!   violates the same property code.
//! * [`corpus`] serialises counterexamples as replayable one-line JSON and
//!   manages the committed regression corpus under
//!   `crates/certify/corpus/`.
//!
//! The `certify` binary (`certify run | replay | minimise`) wires these
//! into CI; see the repository README for the triage workflow.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Library code reports through return values, never raw stdio; the
// `certify` binary is a separate crate root and prints freely.
#![warn(clippy::print_stdout)]
#![warn(clippy::print_stderr)]

pub mod corpus;
pub mod gen;
pub mod props;
pub mod replay;
pub mod shrink;

pub use corpus::{corpus_dir, from_json, load_dir, to_json, FORMAT_VERSION};
pub use gen::{generate, CertBid, CertInstance, Shape, SplitMix64};
pub use props::{check, Report, Stats, Violation};
pub use replay::check_replay;
pub use shrink::minimise;

//! The one-line JSON counterexample format and the committed corpus.
//!
//! Every instance the certifier flags is minimised and written as a single
//! JSON line, so a counterexample fits in a commit message, a bug report,
//! or a grep. The files under `crates/certify/corpus/` are the permanent
//! regression suite: each one pinned a real (or representative) mechanism
//! edge case, and `certify replay` / the `corpus_replay` integration test
//! re-check all of them on every CI run.
//!
//! The format is versioned (`"v": 1`) and deliberately flat:
//!
//! ```json
//! {"v":1,"seed":7,"shape":"ties","note":"…","t":3,"k":1,"t_max":60,
//!  "model":"linear","param":10,"qualify":"intent",
//!  "clients":[[1,2],[0.5,1]],"bids":[[0,2,0.5,1,2,1],[1,6,0.5,2,3,2]]}
//! ```
//!
//! Bid rows are `[client, price, theta, a, d, c]`; client rows are
//! `[compute_time, comm_time]`. Encoding and parsing reuse
//! [`fl_telemetry::json`] — the workspace's zero-dependency JSON layer.

use std::fs;
use std::path::{Path, PathBuf};

use fl_auction::{LocalIterationModel, QualifyMode};
use fl_telemetry::json::{self, Json};

use crate::gen::{CertBid, CertInstance};

/// Version tag written into every corpus line.
pub const FORMAT_VERSION: u64 = 1;

/// Serialises an instance as one line of JSON (no trailing newline).
pub fn to_json(ci: &CertInstance) -> String {
    let (model, param) = match ci.model {
        LocalIterationModel::Linear { scale } => ("linear", scale),
        LocalIterationModel::LogInverse { eta } => ("log", eta),
    };
    let qualify = match ci.qualify {
        QualifyMode::Intent => "intent",
        QualifyMode::Literal => "literal",
    };
    let clients: Vec<String> = ci
        .clients
        .iter()
        .map(|&(cmp, com)| json::array(&[json::number(cmp), json::number(com)]))
        .collect();
    let bids: Vec<String> = ci
        .bids
        .iter()
        .map(|b| {
            json::array(&[
                b.client.to_string(),
                json::number(b.price),
                json::number(b.theta),
                b.a.to_string(),
                b.d.to_string(),
                b.c.to_string(),
            ])
        })
        .collect();
    let mut members = vec![
        ("v".into(), FORMAT_VERSION.to_string()),
        ("seed".into(), ci.seed.to_string()),
        ("shape".into(), json::string(&ci.shape)),
        ("note".into(), json::string(&ci.note)),
        ("t".into(), ci.t.to_string()),
        ("k".into(), ci.k.to_string()),
        ("t_max".into(), json::number(ci.t_max)),
        ("model".into(), json::string(model)),
        ("param".into(), json::number(param)),
        ("qualify".into(), json::string(qualify)),
        ("clients".into(), json::array(&clients)),
        ("bids".into(), json::array(&bids)),
    ];
    // Optional online knob; `+∞` is not a JSON number, so it is spelled
    // as the string "inf". Absent = batch-only (pre-knob lines parse
    // unchanged).
    if let Some(b) = ci.online_budget {
        let enc = if b.is_infinite() {
            json::string("inf")
        } else {
            json::number(b)
        };
        members.push(("online_budget".into(), enc));
    }
    json::object(&members)
}

/// Parses one corpus line back into an instance.
///
/// # Errors
///
/// Returns a description of the first structural problem (bad JSON,
/// missing key, wrong type, unknown model/qualify name, unsupported
/// version). Semantic validation — windows, accuracies, client indices —
/// happens later in [`CertInstance::to_instance`].
pub fn from_json(line: &str) -> Result<CertInstance, String> {
    let doc = json::parse(line)?;
    let v = need_u64(&doc, "v")?;
    if v != FORMAT_VERSION {
        return Err(format!("unsupported corpus format version {v}"));
    }
    let model = match need_str(&doc, "model")? {
        "linear" => LocalIterationModel::Linear {
            scale: need_f64(&doc, "param")?,
        },
        "log" => LocalIterationModel::LogInverse {
            eta: need_f64(&doc, "param")?,
        },
        other => return Err(format!("unknown local-iteration model {other:?}")),
    };
    let qualify = match need_str(&doc, "qualify")? {
        "intent" => QualifyMode::Intent,
        "literal" => QualifyMode::Literal,
        other => return Err(format!("unknown qualify mode {other:?}")),
    };
    let clients = need_arr(&doc, "clients")?
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let row = row
                .as_array()
                .ok_or_else(|| format!("clients[{i}] is not an array"))?;
            if row.len() != 2 {
                return Err(format!("clients[{i}] must be [compute, comm]"));
            }
            Ok((num(&row[0], "compute")?, num(&row[1], "comm")?))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let bids = need_arr(&doc, "bids")?
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let row = row
                .as_array()
                .ok_or_else(|| format!("bids[{i}] is not an array"))?;
            if row.len() != 6 {
                return Err(format!("bids[{i}] must be [client, price, theta, a, d, c]"));
            }
            Ok(CertBid {
                client: uint(&row[0], "client")?,
                price: num(&row[1], "price")?,
                theta: num(&row[2], "theta")?,
                a: uint(&row[3], "a")?,
                d: uint(&row[4], "d")?,
                c: uint(&row[5], "c")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let online_budget = match doc.get("online_budget") {
        None => None,
        Some(v) if v.as_str() == Some("inf") => Some(f64::INFINITY),
        Some(v) => Some(num(v, "online_budget")?),
    };
    Ok(CertInstance {
        seed: need_u64(&doc, "seed")?,
        shape: need_str(&doc, "shape")?.to_string(),
        note: need_str(&doc, "note")?.to_string(),
        t: u32::try_from(need_u64(&doc, "t")?).map_err(|_| "t out of range".to_string())?,
        k: u32::try_from(need_u64(&doc, "k")?).map_err(|_| "k out of range".to_string())?,
        t_max: need_f64(&doc, "t_max")?,
        model,
        qualify,
        clients,
        bids,
        online_budget,
    })
}

/// The committed corpus directory, resolved relative to this crate so the
/// bin and tests agree regardless of the working directory.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Loads every `*.json` corpus file under `dir`, sorted by file name.
///
/// # Errors
///
/// Returns the first I/O or parse failure, tagged with the file name.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, CertInstance)>, String> {
    let mut names: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let ci = from_json(text.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            Ok((name, ci))
        })
        .collect()
}

fn need<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn need_u64(doc: &Json, key: &str) -> Result<u64, String> {
    need(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("{key:?} is not an unsigned integer"))
}

fn need_f64(doc: &Json, key: &str) -> Result<f64, String> {
    num(need(doc, key)?, key)
}

fn need_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    need(doc, key)?
        .as_str()
        .ok_or_else(|| format!("{key:?} is not a string"))
}

fn need_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    need(doc, key)?
        .as_array()
        .ok_or_else(|| format!("{key:?} is not an array"))
}

fn num(v: &Json, what: &str) -> Result<f64, String> {
    match v.as_f64() {
        Some(x) if x.is_finite() => Ok(x),
        _ => Err(format!("{what:?} is not a finite number")),
    }
}

fn uint(v: &Json, what: &str) -> Result<u32, String> {
    v.as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| format!("{what:?} is not a u32"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn round_trip_is_lossless() {
        for seed in [0, 3, 17, 99, 1234] {
            let ci = generate(seed);
            let line = to_json(&ci);
            assert!(!line.contains('\n'), "corpus lines must be one line");
            let back = from_json(&line).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(ci, back, "seed {seed}");
        }
    }

    #[test]
    fn online_budget_round_trips_including_infinity_and_absence() {
        for budget in [None, Some(0.0), Some(42.5), Some(f64::INFINITY)] {
            let mut ci = generate(0);
            ci.online_budget = budget;
            let line = to_json(&ci);
            let back = from_json(&line).unwrap_or_else(|e| panic!("{budget:?}: {e}"));
            assert_eq!(ci, back, "{budget:?}");
        }
        // Pre-knob corpus lines (no key) parse as batch-only.
        let mut ci = generate(0);
        ci.online_budget = None;
        assert!(!to_json(&ci).contains("online_budget"));
    }

    #[test]
    fn malformed_lines_error_with_context() {
        for (line, expect) in [
            ("", "unexpected end of input"),
            ("{}", "missing key \"v\""),
            (r#"{"v":2}"#, "unsupported corpus format version 2"),
            (
                &to_json(&generate(0)).replace("\"linear\"", "\"cubic\""),
                "unknown local-iteration model",
            ),
            (
                &to_json(&generate(0)).replace("\"intent\"", "\"strict\""),
                "unknown qualify mode",
            ),
        ] {
            let err = from_json(line).unwrap_err();
            assert!(err.contains(expect), "{line:?} gave {err:?}");
        }
    }

    #[test]
    fn bid_rows_must_have_six_fields() {
        let mut ci = generate(0);
        ci.bids.truncate(1);
        let line = to_json(&ci);
        // Drop the last field of the only bid row. "bids" is the final
        // key, so the document ends `…,{d},{c}]]}` — rewrite that tail.
        let tail = format!(",{},{}]]}}", ci.bids[0].d, ci.bids[0].c);
        assert!(line.ends_with(&tail), "{line}");
        let broken = format!("{},{}]]}}", &line[..line.len() - tail.len()], ci.bids[0].d);
        let err = from_json(&broken).unwrap_err();
        assert!(
            err.contains("must be [client, price, theta, a, d, c]"),
            "{err}"
        );
    }

    #[test]
    fn corpus_dir_points_into_this_crate() {
        assert!(corpus_dir().ends_with("crates/certify/corpus"));
    }
}

//! The `certify` CLI: fuzz, replay, and minimise mechanism counterexamples.
//!
//! ```text
//! certify run [--seeds N] [--start S] [--smoke]   # fuzz N seeded instances
//! certify replay [FILE|DIR]                       # re-check corpus entries
//! certify minimise FILE [--property CODE]         # shrink a failing line
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.
//! `run` prints one JSON line per *minimised* violation so a failing CI
//! log is directly committable into `crates/certify/corpus/`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fl_certify::props::prop;
use fl_certify::{check, corpus_dir, from_json, generate, load_dir, minimise, to_json, Stats};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("run") => run(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("minimise") | Some("minimize") => minimise_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage: certify run [--seeds N] [--start S] [--smoke]\n       \
                 certify replay [FILE|DIR]\n       \
                 certify minimise FILE [--property CODE]"
            );
            ExitCode::from(2)
        }
    }
}

/// `certify run`: fuzz seeded instances; `--smoke` adds the corpus replay
/// (the CI configuration).
fn run(args: &[String]) -> ExitCode {
    let mut seeds: u64 = 200;
    let mut start: u64 = 0;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => return usage("--seeds needs an integer"),
            },
            "--start" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => start = n,
                None => return usage("--start needs an integer"),
            },
            "--smoke" => smoke = true,
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }
    if smoke {
        seeds = 50;
        start = 0;
    }

    let mut totals = Stats::default();
    let mut failures = 0u64;
    for seed in start..start + seeds {
        let ci = generate(seed);
        let report = check(&ci);
        totals.absorb(&report.stats);
        if !report.ok() {
            failures += 1;
            eprintln!(
                "seed {seed} ({}): {} violation(s)",
                ci.shape,
                report.violations.len()
            );
            for v in &report.violations {
                eprintln!("  {v}");
            }
            // Minimise against the first violation's property and print a
            // committable corpus line.
            let shrunk = minimise(&ci, report.violations[0].property);
            println!("{}", to_json(&shrunk));
        }
    }
    println!(
        "certify run: {} seed(s) from {start}, {} failing; horizons={} proven={} bounded={} \
         greedy_stalls={} probes={} stalled_probes={} online_streams={} online_probes={}",
        seeds,
        failures,
        totals.horizons,
        totals.exact_proven,
        totals.exact_bounded,
        totals.greedy_stalls,
        totals.probes,
        totals.stalled_probes,
        totals.online_streams,
        totals.online_probes
    );

    let replay_code = if smoke {
        replay(&[])
    } else {
        ExitCode::SUCCESS
    };
    if failures > 0 {
        ExitCode::from(1)
    } else {
        replay_code
    }
}

/// `certify replay [FILE|DIR]`: re-check corpus entries (default: the
/// committed corpus directory).
fn replay(args: &[String]) -> ExitCode {
    let target: PathBuf = match args {
        [] => corpus_dir(),
        [p] => PathBuf::from(p),
        _ => return usage("replay takes at most one path"),
    };
    let entries = if target.is_dir() {
        match load_dir(&target) {
            Ok(e) => e,
            Err(e) => return usage(&e),
        }
    } else {
        match read_instance(&target) {
            Ok(ci) => vec![(target.display().to_string(), ci)],
            Err(e) => return usage(&e),
        }
    };
    if entries.is_empty() {
        return usage(&format!("no corpus entries under {}", target.display()));
    }
    let mut failures = 0;
    for (name, ci) in &entries {
        let report = check(ci);
        if report.ok() {
            println!("PASS {name}: {}", note_or(ci, "no note"));
        } else {
            failures += 1;
            println!("FAIL {name}: {} violation(s)", report.violations.len());
            for v in &report.violations {
                println!("  {v}");
            }
        }
    }
    println!(
        "certify replay: {}/{} clean",
        entries.len() - failures,
        entries.len()
    );
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `certify minimise FILE [--property CODE]`: shrink a failing corpus line
/// while preserving one property code (default: its first violation).
fn minimise_cmd(args: &[String]) -> ExitCode {
    let mut file: Option<&str> = None;
    let mut property: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--property" => match it.next() {
                Some(p) => property = Some(p.clone()),
                None => return usage("--property needs a code"),
            },
            other if file.is_none() => file = Some(other),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(file) = file else {
        return usage("minimise needs a corpus file");
    };
    let ci = match read_instance(Path::new(file)) {
        Ok(ci) => ci,
        Err(e) => return usage(&e),
    };
    let report = check(&ci);
    let target = match property {
        Some(p) => match known_property(&p) {
            Some(code) => code,
            None => return usage(&format!("unknown property code {p:?}")),
        },
        None => match report.violations.first() {
            Some(v) => v.property,
            None => {
                println!("instance is clean; nothing to minimise");
                return ExitCode::SUCCESS;
            }
        },
    };
    let shrunk = minimise(&ci, target);
    println!("{}", to_json(&shrunk));
    ExitCode::SUCCESS
}

/// Resolves a user-supplied property code to its static string.
fn known_property(name: &str) -> Option<&'static str> {
    [
        prop::INVALID,
        prop::WDP,
        prop::OUTCOME,
        prop::IR,
        prop::CERT,
        prop::DUAL,
        prop::EXACT_DIVERGENCE,
        prop::GREEDY_BELOW_OPT,
        prop::RATIO_BOUND,
        prop::DUAL_ABOVE_OPT,
        prop::FEASIBILITY_FLIP,
        prop::OUTER_PICK,
        prop::PAYMENT_IDENTITY,
        prop::MYERSON_MISSING,
        prop::MYERSON_IR,
        prop::ABOVE_THRESHOLD_WINS,
        prop::BELOW_THRESHOLD_LOSES,
        prop::THRESHOLD_DEPENDS_ON_BID,
        prop::LOSER_MONOTONICITY,
        prop::ONLINE_BUDGET,
        prop::ONLINE_IR,
        prop::ONLINE_POSTED_TRUTHFUL,
        prop::ONLINE_INCREMENTAL_BATCH,
    ]
    .into_iter()
    .find(|&code| code == name)
}

fn read_instance(path: &Path) -> Result<fl_certify::CertInstance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    from_json(text.trim()).map_err(|e| format!("{}: {e}", path.display()))
}

fn note_or<'a>(ci: &'a fl_certify::CertInstance, fallback: &'a str) -> &'a str {
    if ci.note.is_empty() {
        fallback
    } else {
        &ci.note
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("certify: {msg}");
    ExitCode::from(2)
}

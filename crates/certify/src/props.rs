//! The property engine: every mechanism invariant, checked per instance.
//!
//! [`check`] runs three families of properties against one
//! [`CertInstance`]:
//!
//! 1. **Differential optimality** — per candidate horizon, the greedy
//!    `A_winner` social cost is compared against the exact solvers
//!    ([`BruteForceSolver`] as ground truth, [`ExactSolver`] cross-checked
//!    against it). When an optimum is *proven* (see
//!    [`Optimality`]), greedy must not beat it, the dual certificate's
//!    objective must stay below it, and greedy must stay within the
//!    per-instance `H_{T̂_g}·ω` bound of it. Horizons where the exact
//!    search stops at a bound are skipped — an unproven incumbent must
//!    never produce a false positive.
//! 2. **Truthfulness** — each winner's Myerson threshold is located by
//!    bisection, then probed: bidding just below still wins, just above
//!    loses, the threshold does not move under a misreport, and losers
//!    stay losers when they raise their price (allocation monotonicity,
//!    Lemma 1).
//! 3. **Feasibility and identities** — `fl_auction::verify`'s ILP checks,
//!    individual rationality, the Alg. 3 payment identity
//!    `payment = gain · critical_avg` replayed from the selection trace,
//!    and consistency of `run_auction`'s horizon pick with a manual fold
//!    over the sweep.
//!
//! A documented non-bug is classified as a statistic, not a violation:
//! greedy `A_winner` can stall (report infeasible) on instances the exact
//! solver schedules — that is the approximation gap the paper accepts, and
//! it lands in [`Stats::greedy_stalls`]. The same gap leaks into the
//! truthfulness probes: repricing a bid can reorder the greedy selection
//! until a least-loaded tie parks the bid on the wrong round and the whole
//! run stalls, which makes the allocation non-monotone *through the stall*
//! rather than through any payment-rule defect. Lemma 1's monotonicity is
//! conditional on the greedy staying feasible, so a winner whose probe
//! failures coincide with a stall anywhere along its price axis is counted
//! in [`Stats::stalled_probes`] instead of flagged.

use std::collections::HashSet;

use fl_auction::truthful::{deviation_outcome, myerson_payment, wins_at, DeviationOutcome};
use fl_auction::{
    min_horizon, qualify, run_auction, verify, AWinner, AuctionError, Bid, BidRef, ClientId,
    ClientProfile, DecisionReason, OnlineAuction, OnlineDecision, Round, Wdp, WdpError,
    WdpSolution, WdpSolver, Window,
};
use fl_exact::{BruteForceSolver, ExactSolver, Optimality, ProvingWdpSolver};

use crate::gen::CertInstance;

/// Bid-count ceiling for the exhaustive yardstick (well under
/// [`fl_exact::MAX_BIDS`]; the generator stays below it by construction).
const BRUTE_LIMIT: usize = 14;

/// Stable machine-readable property codes. The minimiser shrinks while
/// preserving the *same* failing code, so these must not change meaning.
pub mod prop {
    /// The instance itself failed validation (hand-written corpus entry).
    pub const INVALID: &str = "invalid_instance";
    /// `verify::wdp_violations` on a solver output.
    pub const WDP: &str = "wdp_feasibility";
    /// `verify::outcome_violations` on the final outcome.
    pub const OUTCOME: &str = "outcome_feasibility";
    /// `verify::ir_violations`: a winner paid below its claimed cost.
    pub const IR: &str = "individual_rationality";
    /// `verify::certificate_violations`: inconsistent dual certificate.
    pub const CERT: &str = "certificate";
    /// `verify::dual_feasibility_violations`: constraint (8a) broken.
    pub const DUAL: &str = "dual_feasibility";
    /// Brute force and branch-and-bound disagree on a proven optimum or on
    /// feasibility.
    pub const EXACT_DIVERGENCE: &str = "exact_divergence";
    /// Greedy produced a cheaper solution than a *proven* optimum.
    pub const GREEDY_BELOW_OPT: &str = "greedy_below_proven_opt";
    /// Greedy cost exceeds `H_{T̂_g}·ω · OPT` on a proven optimum.
    pub const RATIO_BOUND: &str = "ratio_bound_vs_opt";
    /// The dual objective exceeds a proven optimum (weak duality broken).
    pub const DUAL_ABOVE_OPT: &str = "dual_above_opt";
    /// The exact solver proved infeasibility while greedy found a feasible
    /// solution (impossible: the greedy solution is a witness).
    pub const FEASIBILITY_FLIP: &str = "exact_infeasible_greedy_feasible";
    /// `run_auction`'s `(horizon, cost)` pick disagrees with the manual
    /// fold over the per-horizon sweep (cheapest, smallest-horizon ties).
    pub const OUTER_PICK: &str = "outer_pick";
    /// A winner's payment is not `gain · critical_avg` (or its price when
    /// no runner-up existed) per the selection trace.
    pub const PAYMENT_IDENTITY: &str = "payment_identity";
    /// A winner has no Myerson threshold (it does not win at its own
    /// price — contradicts it being a winner).
    pub const MYERSON_MISSING: &str = "myerson_missing";
    /// The Myerson threshold lies below the winner's claimed cost.
    pub const MYERSON_IR: &str = "myerson_ir";
    /// The bid still wins when priced above its threshold.
    pub const ABOVE_THRESHOLD_WINS: &str = "above_threshold_wins";
    /// The bid loses when priced below its threshold.
    pub const BELOW_THRESHOLD_LOSES: &str = "below_threshold_loses";
    /// The threshold moved when the bid misreported its price (the
    /// allocation must make payments bid-independent for truthfulness).
    pub const THRESHOLD_DEPENDS_ON_BID: &str = "threshold_depends_on_bid";
    /// A losing bid started winning after *raising* its price
    /// (monotonicity, Lemma 1).
    pub const LOSER_MONOTONICITY: &str = "loser_monotonicity";
    /// A journal-recovered epoch decision diverged from a fresh solve on
    /// the recorded bid set (see [`crate::replay`]).
    pub const JOURNAL_REPLAY: &str = "journal_replay";
    /// Online mode: total remuneration exceeded the budget `B`.
    pub const ONLINE_BUDGET: &str = "online_budget_feasibility";
    /// Online mode: a committed bid was paid below its claimed cost.
    pub const ONLINE_IR: &str = "online_individual_rationality";
    /// Online mode: a price misreport moved the payment, let the bid win
    /// above the posted offer, or rejected it below (posted-price
    /// truthfulness on the replayed arrival prefix).
    pub const ONLINE_POSTED_TRUTHFUL: &str = "online_posted_truthfulness";
    /// Online mode: the incremental qualified-set precomp diverged from
    /// its batch-equivalence oracle ([`fl_auction::SweepPrecomp::rebatch`]).
    pub const ONLINE_INCREMENTAL_BATCH: &str = "online_incremental_vs_batch";
}

/// One failed property with human-readable context.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable code from [`prop`] (the minimiser keys on this).
    pub property: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.property, self.detail)
    }
}

/// Non-failure observations: work counters and documented algorithm gaps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Candidate horizons whose WDP was examined.
    pub horizons: u64,
    /// Horizons where an exact solver proved an optimum.
    pub exact_proven: u64,
    /// Horizons where branch-and-bound stopped at a bound (no proof).
    pub exact_bounded: u64,
    /// Horizons where greedy stalled but an exact solver scheduled around
    /// it — the paper's documented approximation gap, not a violation.
    pub greedy_stalls: u64,
    /// Unilateral price-deviation probe groups executed.
    pub probes: u64,
    /// Winners whose probe failures were traced to a greedy stall along
    /// their price axis (Lemma 1 monotonicity is conditional on the greedy
    /// staying feasible — see the module docs), not to the payment rule.
    pub stalled_probes: u64,
    /// Instances replayed as an online arrival stream (the online knob).
    pub online_streams: u64,
    /// Online prefix-replay misreport probes executed.
    pub online_probes: u64,
    /// Whether `run_auction` produced an outcome at all.
    pub feasible: bool,
}

impl Stats {
    /// Merges another run's counters into this one (`feasible` ORs).
    pub fn absorb(&mut self, other: &Stats) {
        self.horizons += other.horizons;
        self.exact_proven += other.exact_proven;
        self.exact_bounded += other.exact_bounded;
        self.greedy_stalls += other.greedy_stalls;
        self.probes += other.probes;
        self.stalled_probes += other.stalled_probes;
        self.online_streams += other.online_streams;
        self.online_probes += other.online_probes;
        self.feasible |= other.feasible;
    }
}

/// The certifier's verdict on one instance.
#[derive(Debug, Clone)]
pub struct Report {
    /// Every property violation found (empty = certified clean).
    pub violations: Vec<Violation>,
    /// Work counters and gap statistics.
    pub stats: Stats,
}

impl Report {
    /// Whether the instance passed every property.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every property against one instance.
pub fn check(ci: &CertInstance) -> Report {
    let mut v = Vec::new();
    let mut stats = Stats::default();
    let instance = match ci.to_instance() {
        Ok(i) => i,
        Err(e) => {
            v.push(Violation {
                property: prop::INVALID,
                detail: e.to_string(),
            });
            return Report {
                violations: v,
                stats,
            };
        }
    };
    let t = instance.config().max_rounds();
    let Some(t0) = min_horizon(&instance) else {
        // No bids: nothing to certify for the batch mechanism, but the
        // online driver must still survive the empty arrival prefix.
        if let Some(budget) = ci.online_budget {
            check_online(ci, budget, &mut v, &mut stats);
        }
        return Report {
            violations: v,
            stats,
        };
    };

    // Per-horizon differential sweep (Alg. 1's loop, re-derived manually
    // so run_auction's own pick can be cross-checked below).
    let greedy = AWinner::new();
    let mut best: Option<(u32, f64)> = None;
    for h in t0..=t {
        let wdp = qualify(&instance, h);
        if wdp.bids().is_empty() {
            continue;
        }
        stats.horizons += 1;
        let g = greedy.solve_wdp(&wdp);
        let (opt, exact_feasible) = check_exact(&wdp, h, &g, &mut v, &mut stats);
        match &g {
            Ok(sol) => {
                push_all(&mut v, prop::WDP, h, verify::wdp_violations(&wdp, sol));
                push_all(&mut v, prop::IR, h, verify::ir_violations(sol));
                push_all(&mut v, prop::CERT, h, verify::certificate_violations(sol));
                push_all(
                    &mut v,
                    prop::DUAL,
                    h,
                    verify::dual_feasibility_violations(&wdp, sol),
                );
                if let Some(opt) = opt {
                    check_differential(sol, opt, h, &mut v);
                }
                if best.as_ref().is_none_or(|&(_, c)| sol.cost() < c) {
                    best = Some((h, sol.cost()));
                }
            }
            Err(WdpError::Infeasible) if exact_feasible => {
                stats.greedy_stalls += 1;
            }
            Err(_) => {}
        }
    }

    // Outer consistency: run_auction must pick the cheapest greedy-feasible
    // horizon, smallest horizon on ties (exact `<` fold, PR 3 semantics).
    match run_auction(&instance) {
        Ok(outcome) => {
            stats.feasible = true;
            match best {
                Some((h, c)) if outcome.horizon() == h && outcome.social_cost() == c => {}
                other => v.push(Violation {
                    property: prop::OUTER_PICK,
                    detail: format!(
                        "run_auction chose T_g={} at cost {} but the sweep fold says {:?}",
                        outcome.horizon(),
                        outcome.social_cost(),
                        other
                    ),
                }),
            }
            push_all(
                &mut v,
                prop::OUTCOME,
                outcome.horizon(),
                verify::outcome_violations(&instance, &outcome),
            );
            let wdp = qualify(&instance, outcome.horizon());
            check_payment_identity(&wdp, outcome.solution(), &mut v);
            check_truthfulness(&wdp, outcome.solution(), &mut v, &mut stats);
        }
        Err(_) => {
            if let Some((h, c)) = best {
                v.push(Violation {
                    property: prop::OUTER_PICK,
                    detail: format!(
                        "run_auction reported infeasible but horizon {h} has greedy cost {c}"
                    ),
                });
            }
        }
    }

    if let Some(budget) = ci.online_budget {
        check_online(ci, budget, &mut v, &mut stats);
    }

    Report {
        violations: v,
        stats,
    }
}

/// Replays the bid list as an arrival stream (bids arrive in list order)
/// through [`OnlineAuction`] under budget `B` and checks the online
/// mechanism's invariants:
///
/// * **Budget feasibility** — `Σ payments ≤ B`;
/// * **Online IR** — every committed bid is paid at least its claimed
///   cost (the posted offer covered the price by the commit rule);
/// * **Posted-price truthfulness on arrival prefixes** — for each
///   arrival, the prefix up to it is replayed with that one bid
///   repriced: under-reporting must not move the payment, and pricing
///   above the posted offer must flip the decision to
///   `price_above_offer` (the payment is bid-independent, so no
///   misreport can profit);
/// * **Incremental ≡ batch** — the streaming [`fl_auction::SweepPrecomp`]
///   must agree with its [`rebatch`](fl_auction::SweepPrecomp::rebatch)
///   oracle on every horizon's qualified set and cost lower bound
///   (bit-for-bit), proving the insert path equivalent to a fresh batch
///   build.
fn check_online(ci: &CertInstance, budget: f64, v: &mut Vec<Violation>, stats: &mut Stats) {
    let full = match stream(ci, budget, ci.bids.len(), None) {
        Ok(run) => run,
        Err(e) => {
            // `to_instance` validated the same fields already; an error
            // here means the online driver rejects an input the batch
            // path accepts.
            v.push(Violation {
                property: prop::ONLINE_INCREMENTAL_BATCH,
                detail: format!("online stream rejected a valid instance: {e}"),
            });
            return;
        }
    };
    stats.online_streams += 1;
    let out = full.online.outcome();

    // Budget feasibility: Σ payments ≤ B.
    if out.total_payment() > budget + 1e-9 * (1.0 + budget.min(f64::MAX)) {
        v.push(Violation {
            property: prop::ONLINE_BUDGET,
            detail: format!(
                "total payment {} exceeds the budget {budget}",
                out.total_payment()
            ),
        });
    }

    // Online IR: every committed payment covers the claimed cost.
    for (i, d) in full.decisions.iter().enumerate() {
        if d.committed && !d.duplicate && d.payment + 1e-9 < ci.bids[i].price {
            v.push(Violation {
                property: prop::ONLINE_IR,
                detail: format!(
                    "arrival {i}: committed at payment {} below the claimed cost {}",
                    d.payment, ci.bids[i].price
                ),
            });
        }
    }

    // Incremental ≡ batch: the streaming precomp vs its rebatch oracle,
    // on every horizon's qualified set and cost lower bound.
    let precomp = full.online.precomp();
    let oracle = precomp.rebatch();
    for h in 1..=ci.t {
        let inc = precomp.qualify_at(h);
        let bat = oracle.qualify_at(h);
        if inc.bids() != bat.bids() {
            v.push(Violation {
                property: prop::ONLINE_INCREMENTAL_BATCH,
                detail: format!(
                    "T̂={h}: incremental qualified set has {} bid(s), rebatch oracle {}",
                    inc.bids().len(),
                    bat.bids().len()
                ),
            });
        }
        let (lb_inc, lb_bat) = (precomp.cost_lower_bound(h), oracle.cost_lower_bound(h));
        if lb_inc.to_bits() != lb_bat.to_bits() {
            v.push(Violation {
                property: prop::ONLINE_INCREMENTAL_BATCH,
                detail: format!("T̂={h}: incremental lower bound {lb_inc} vs rebatch {lb_bat}"),
            });
        }
    }

    // Posted-price truthfulness on arrival prefixes. Repricing a bid can
    // make it collide with an identical earlier arrival (the duplicate
    // ledger would replay that one instead); such probes are skipped.
    for (i, d) in full.decisions.iter().enumerate() {
        if d.duplicate {
            continue;
        }
        let truth = ci.bids[i].price;
        if d.committed {
            // Under-report: still committed, payment bit-identical.
            let lower = truth / 2.0;
            if !collides(ci, i, lower) {
                stats.online_probes += 1;
                match stream(ci, budget, i + 1, Some((i, lower))) {
                    Ok(run) => {
                        let rd = &run.decisions[i];
                        if !rd.committed
                            || rd.payment.to_bits() != d.payment.to_bits()
                            || rd.schedule != d.schedule
                        {
                            v.push(Violation {
                                property: prop::ONLINE_POSTED_TRUTHFUL,
                                detail: format!(
                                    "arrival {i}: under-reporting {truth} → {lower} changed the \
                                     decision (committed={}, payment {} → {})",
                                    rd.committed, d.payment, rd.payment
                                ),
                            });
                        }
                    }
                    Err(e) => v.push(Violation {
                        property: prop::ONLINE_POSTED_TRUTHFUL,
                        detail: format!("arrival {i}: repriced prefix replay failed: {e}"),
                    }),
                }
            }
            // Over-report past the posted offer: must be turned away by
            // the price gate. (The offer is `payment`; unreachable when
            // the budget, and hence the offer, is infinite.)
            let above = 2.0 * d.payment + 1.0;
            if above.is_finite() && !collides(ci, i, above) {
                stats.online_probes += 1;
                match stream(ci, budget, i + 1, Some((i, above))) {
                    Ok(run) => {
                        let rd = &run.decisions[i];
                        if rd.committed || rd.reason != DecisionReason::PriceAboveOffer {
                            v.push(Violation {
                                property: prop::ONLINE_POSTED_TRUTHFUL,
                                detail: format!(
                                    "arrival {i}: priced at {above} above the offer {} but got \
                                     {:?} instead of price_above_offer",
                                    d.payment, rd.reason
                                ),
                            });
                        }
                    }
                    Err(e) => v.push(Violation {
                        property: prop::ONLINE_POSTED_TRUTHFUL,
                        detail: format!("arrival {i}: repriced prefix replay failed: {e}"),
                    }),
                }
            }
        } else if d.reason == DecisionReason::PriceAboveOffer && !collides(ci, i, 0.0) {
            // Rejected by the price gate alone: a free bid must clear it
            // (it may still hit the budget gate, but never the price one).
            stats.online_probes += 1;
            match stream(ci, budget, i + 1, Some((i, 0.0))) {
                Ok(run) => {
                    let rd = &run.decisions[i];
                    if rd.reason == DecisionReason::PriceAboveOffer {
                        v.push(Violation {
                            property: prop::ONLINE_POSTED_TRUTHFUL,
                            detail: format!(
                                "arrival {i}: still price_above_offer at price 0 \
                                 (the offer cannot be negative)"
                            ),
                        });
                    }
                }
                Err(e) => v.push(Violation {
                    property: prop::ONLINE_POSTED_TRUTHFUL,
                    detail: format!("arrival {i}: repriced prefix replay failed: {e}"),
                }),
            }
        }
    }
}

/// One replayed arrival stream: the per-arrival decisions plus the
/// driver for end-state inspection.
struct StreamRun {
    decisions: Vec<OnlineDecision>,
    online: OnlineAuction,
}

/// Replays the first `upto` bids of `ci` as an arrival stream under
/// `budget`, optionally repricing the bid at index `reprice.0`.
fn stream(
    ci: &CertInstance,
    budget: f64,
    upto: usize,
    reprice: Option<(usize, f64)>,
) -> Result<StreamRun, AuctionError> {
    let cfg = fl_auction::AuctionConfig::builder()
        .max_rounds(ci.t)
        .clients_per_round(ci.k)
        .round_time_limit(ci.t_max)
        .local_model(ci.model)
        .qualify_mode(ci.qualify)
        .build()?;
    let mut online = OnlineAuction::new(cfg, budget)?;
    for &(compute, comm) in &ci.clients {
        online.register_client(ClientProfile::new(compute, comm)?);
    }
    let mut decisions = Vec::with_capacity(upto);
    for (i, b) in ci.bids.iter().take(upto).enumerate() {
        let price = match reprice {
            Some((j, p)) if j == i => p,
            _ => b.price,
        };
        let bid = Bid::new(price, b.theta, Window::new(Round(b.a), Round(b.d)), b.c)?;
        decisions.push(online.submit(ClientId(b.client), bid)?);
    }
    Ok(StreamRun { decisions, online })
}

/// Whether repricing bid `i` to `price` makes it identical to an earlier
/// arrival (the duplicate ledger would then replay that decision).
fn collides(ci: &CertInstance, i: usize, price: f64) -> bool {
    let b = &ci.bids[i];
    ci.bids[..i].iter().any(|e| {
        e.client == b.client
            && e.price.to_bits() == price.to_bits()
            && e.theta.to_bits() == b.theta.to_bits()
            && (e.a, e.d, e.c) == (b.a, b.d, b.c)
    })
}

/// Runs the exact yardsticks on one horizon's WDP. Returns the proven
/// optimum cost (when any solver completed its proof) and whether any
/// exact solver found a feasible solution at all.
fn check_exact(
    wdp: &Wdp,
    h: u32,
    greedy: &Result<WdpSolution, WdpError>,
    v: &mut Vec<Violation>,
    stats: &mut Stats,
) -> (Option<f64>, bool) {
    let bnb = ExactSolver::new().solve_proved(wdp);
    let brute =
        (wdp.bids().len() <= BRUTE_LIMIT).then(|| BruteForceSolver::new().solve_proved(wdp));

    // Exact solutions must themselves satisfy the ILP constraints.
    for (name, r) in [("bnb", Some(&bnb)), ("brute", brute.as_ref())] {
        if let Some(Ok(out)) = r {
            for m in verify::wdp_violations(wdp, &out.solution) {
                v.push(Violation {
                    property: prop::WDP,
                    detail: format!("T̂={h} [{name}]: {m}"),
                });
            }
        }
    }

    // Cross-check the two exact solvers against each other.
    if let Some(br) = &brute {
        match (br, &bnb) {
            (Ok(a), Ok(b))
                if a.optimality.is_proven()
                    && b.optimality.is_proven()
                    && !close(a.solution.cost(), b.solution.cost()) =>
            {
                v.push(Violation {
                    property: prop::EXACT_DIVERGENCE,
                    detail: format!(
                        "T̂={h}: brute optimum {} vs bnb optimum {}",
                        a.solution.cost(),
                        b.solution.cost()
                    ),
                });
            }
            (Err(WdpError::Infeasible), Ok(b)) => v.push(Violation {
                property: prop::EXACT_DIVERGENCE,
                detail: format!(
                    "T̂={h}: brute proved infeasible, bnb found cost {}",
                    b.solution.cost()
                ),
            }),
            (Ok(a), Err(WdpError::Infeasible)) => v.push(Violation {
                property: prop::EXACT_DIVERGENCE,
                detail: format!(
                    "T̂={h}: bnb proved infeasible, brute found cost {}",
                    a.solution.cost()
                ),
            }),
            _ => {}
        }
    }

    let mut proven: Option<f64> = None;
    let mut exact_feasible = false;
    let mut exact_infeasible = false;
    for r in [&bnb].into_iter().chain(brute.as_ref()) {
        match r {
            Ok(out) => {
                exact_feasible = true;
                match &out.optimality {
                    Optimality::Proven => {
                        proven.get_or_insert(out.solution.cost());
                    }
                    Optimality::Bounded { .. } => stats.exact_bounded += 1,
                }
            }
            Err(WdpError::Infeasible) => exact_infeasible = true,
            Err(_) => {}
        }
    }
    if proven.is_some() {
        stats.exact_proven += 1;
    }
    if exact_infeasible && greedy.is_ok() {
        v.push(Violation {
            property: prop::FEASIBILITY_FLIP,
            detail: format!(
                "T̂={h}: an exact solver proved infeasibility but greedy found a feasible set"
            ),
        });
    }
    (proven, exact_feasible)
}

/// The headline differential property on one horizon: greedy vs a proven
/// optimum, with the dual certificate sandwiched in between (Lemma 5:
/// `D ≤ OPT ≤ P ≤ H_{T̂_g}·ω·D ≤ H_{T̂_g}·ω·OPT`).
fn check_differential(sol: &WdpSolution, opt: f64, h: u32, v: &mut Vec<Violation>) {
    let p = sol.cost();
    if p < opt - 1e-9 * (1.0 + opt.abs()) {
        v.push(Violation {
            property: prop::GREEDY_BELOW_OPT,
            detail: format!("T̂={h}: greedy cost {p} beats the proven optimum {opt}"),
        });
    }
    let Some(cert) = sol.certificate() else {
        return;
    };
    if cert.dual_objective > opt + 1e-6 * (1.0 + opt.abs()) {
        v.push(Violation {
            property: prop::DUAL_ABOVE_OPT,
            detail: format!(
                "T̂={h}: dual objective {} exceeds the proven optimum {opt}",
                cert.dual_objective
            ),
        });
    }
    let bound = cert.ratio_bound() * opt;
    if bound.is_finite() && p > bound + 1e-6 * (1.0 + bound.abs()) {
        v.push(Violation {
            property: prop::RATIO_BOUND,
            detail: format!(
                "T̂={h}: greedy cost {p} exceeds H·ω·OPT = {bound} (H·ω = {})",
                cert.ratio_bound()
            ),
        });
    }
}

/// Replays the greedy selection trace and checks the Alg. 3 payment
/// identity exactly (same deterministic code path, so `==` is correct).
fn check_payment_identity(wdp: &Wdp, sol: &WdpSolution, v: &mut Vec<Violation>) {
    let Ok((resolved, trace)) = AWinner::new().solve_traced(wdp) else {
        v.push(Violation {
            property: prop::PAYMENT_IDENTITY,
            detail: "traced re-solve is infeasible at the announced horizon".into(),
        });
        return;
    };
    if &resolved != sol {
        v.push(Violation {
            property: prop::PAYMENT_IDENTITY,
            detail: "traced re-solve diverged from the announced outcome".into(),
        });
        return;
    }
    for (step, w) in trace.iter().zip(resolved.winners()) {
        let expected = match step.critical_avg {
            Some(avg) => f64::from(step.gain) * avg,
            None => w.price,
        };
        if w.payment != expected {
            v.push(Violation {
                property: prop::PAYMENT_IDENTITY,
                detail: format!(
                    "{}: payment {} but gain {} × critical_avg {:?} = {expected}",
                    w.bid_ref, w.payment, step.gain, step.critical_avg
                ),
            });
        }
    }
}

/// Unilateral price-deviation probes around every winner's Myerson
/// threshold, plus loser monotonicity.
fn check_truthfulness(wdp: &Wdp, sol: &WdpSolution, v: &mut Vec<Violation>, stats: &mut Stats) {
    let cap = 2.0 * wdp.bids().iter().map(|b| b.price).sum::<f64>() + 10.0;
    let tol = 1e-9;
    // Probe offset comfortably above the bisection tolerance.
    let eps = 1e-6;

    for w in sol.winners() {
        stats.probes += 1;
        let Some(tau) = myerson_payment(wdp, w.bid_ref, cap, tol) else {
            v.push(Violation {
                property: prop::MYERSON_MISSING,
                detail: format!("winner {} has no threshold at its own price", w.bid_ref),
            });
            continue;
        };
        // Probe failures are collected locally first: if any of them (or
        // a scan of the winner's price axis) turns out to involve a greedy
        // stall, the whole group is reclassified as the documented
        // approximation gap rather than a mechanism violation.
        let mut local = Vec::new();
        let mut probed = vec![(tau - eps).max(0.0), tau + eps];
        if tau < w.price - 1e-9 {
            local.push(Violation {
                property: prop::MYERSON_IR,
                detail: format!(
                    "{}: threshold {tau} below the claimed cost {}",
                    w.bid_ref, w.price
                ),
            });
        }
        if !wins_at(wdp, w.bid_ref, (tau - eps).max(0.0)) {
            local.push(Violation {
                property: prop::BELOW_THRESHOLD_LOSES,
                detail: format!(
                    "{}: loses at {} just below threshold {tau}",
                    w.bid_ref,
                    tau - eps
                ),
            });
        }
        if tau + eps < cap && wins_at(wdp, w.bid_ref, tau + eps) {
            local.push(Violation {
                property: prop::ABOVE_THRESHOLD_WINS,
                detail: format!(
                    "{}: wins at {} just above threshold {tau}",
                    w.bid_ref,
                    tau + eps
                ),
            });
        }
        // Truthfulness core: the threshold payment must not move when the
        // bid misreports (otherwise the report influences the payment and
        // a strategic bid could profit).
        for misreport in [0.5 * w.price, 0.5 * (w.price + tau)] {
            if misreport == w.price {
                continue;
            }
            probed.push(misreport);
            let patched = reprice(wdp, w.bid_ref, misreport);
            match myerson_payment(&patched, w.bid_ref, cap, tol) {
                Some(tau2) if (tau2 - tau).abs() <= 1e-6 * (1.0 + tau.abs()) => {}
                got => {
                    if let Some(tau2) = got {
                        probed.push((tau2 - eps).max(0.0));
                        probed.push(tau2 + eps);
                    }
                    local.push(Violation {
                        property: prop::THRESHOLD_DEPENDS_ON_BID,
                        detail: format!(
                            "{}: threshold {tau} became {got:?} after misreporting {misreport}",
                            w.bid_ref
                        ),
                    });
                }
            }
        }
        if !local.is_empty() && stalls_anywhere(wdp, w.bid_ref, &probed, cap) {
            stats.stalled_probes += 1;
        } else {
            v.append(&mut local);
        }
    }

    // Losers must stay losers when they raise their price (Lemma 1).
    let winners: HashSet<BidRef> = sol.winners().iter().map(|w| w.bid_ref).collect();
    for qb in wdp.bids() {
        if winners.contains(&qb.bid_ref) {
            continue;
        }
        stats.probes += 1;
        let raised = 2.0 * qb.price + 1.0;
        if wins_at(wdp, qb.bid_ref, raised) {
            v.push(Violation {
                property: prop::LOSER_MONOTONICITY,
                detail: format!(
                    "losing bid {} starts winning after raising its price {} → {raised}",
                    qb.bid_ref, qb.price
                ),
            });
        }
    }
}

/// Whether repricing `bid` stalls the greedy at any of the probed prices
/// or on a coarse grid over `(0, cap]`.
///
/// A stall anywhere along the price axis means the bid's win region is not
/// the clean interval Lemma 1 assumes — bisection thresholds and deviation
/// probes can then disagree without any payment-rule defect. The grid
/// catches stall pockets the specific failing probes happened to miss.
fn stalls_anywhere(wdp: &Wdp, bid: BidRef, probed: &[f64], cap: f64) -> bool {
    let grid = (1..=16).map(|i| cap * f64::from(i) / 16.0);
    probed
        .iter()
        .copied()
        .chain(grid)
        .any(|p| deviation_outcome(wdp, bid, p) == DeviationOutcome::Stalls)
}

/// Relative closeness for cost comparisons between solvers whose only
/// legitimate difference is floating-point summation order.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

/// Copies `wdp` with one bid's price replaced.
fn reprice(wdp: &Wdp, bid: BidRef, price: f64) -> Wdp {
    let mut bids = wdp.bids().to_vec();
    for b in &mut bids {
        if b.bid_ref == bid {
            b.price = price;
        }
    }
    Wdp::new(wdp.horizon(), wdp.demand_per_round(), bids)
}

/// Prefixes `verify` messages with the horizon and tags them.
fn push_all(v: &mut Vec<Violation>, property: &'static str, h: u32, msgs: Vec<String>) {
    for m in msgs {
        v.push(Violation {
            property,
            detail: format!("T̂={h}: {m}"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, CertBid, CertInstance};
    use fl_auction::{LocalIterationModel, QualifyMode};

    fn hand_instance(bids: Vec<CertBid>, t: u32, k: u32) -> CertInstance {
        let n_clients = bids.iter().map(|b| b.client + 1).max().unwrap_or(0);
        CertInstance {
            seed: 0,
            shape: "hand".into(),
            note: String::new(),
            t,
            k,
            t_max: 60.0,
            model: LocalIterationModel::paper(),
            qualify: QualifyMode::Intent,
            clients: (0..n_clients).map(|_| (1.0, 1.0)).collect(),
            bids,
            online_budget: None,
        }
    }

    fn bid(client: u32, price: f64, a: u32, d: u32, c: u32) -> CertBid {
        CertBid {
            client,
            price,
            theta: 0.5,
            a,
            d,
            c,
        }
    }

    #[test]
    fn paper_worked_example_certifies_clean() {
        let ci = hand_instance(
            vec![
                bid(0, 2.0, 1, 2, 1),
                bid(1, 6.0, 2, 3, 2),
                bid(2, 5.0, 1, 3, 2),
            ],
            3,
            1,
        );
        let report = check(&ci);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.stats.feasible);
        assert!(report.stats.exact_proven >= 1);
    }

    #[test]
    fn invalid_instance_reports_not_panics() {
        let mut ci = hand_instance(vec![bid(0, 1.0, 1, 2, 2)], 2, 1);
        ci.bids[0].theta = 1.5;
        let report = check(&ci);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].property, prop::INVALID);
    }

    #[test]
    fn infeasible_instance_is_a_statistic_not_a_violation() {
        // One client, K = 2: no horizon is feasible for anyone.
        let ci = hand_instance(vec![bid(0, 1.0, 1, 2, 2)], 2, 2);
        let report = check(&ci);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(!report.stats.feasible);
    }

    #[test]
    fn greedy_suboptimal_instance_stays_within_the_certificate() {
        // The bnb test instance where greedy pays 3 and OPT is 2: a real
        // approximation gap that the H·ω bound must absorb.
        let ci = hand_instance(
            vec![
                bid(0, 1.0, 1, 1, 1),
                bid(1, 2.0, 1, 2, 2),
                bid(2, 10.0, 2, 2, 1),
            ],
            2,
            1,
        );
        let report = check(&ci);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.stats.exact_proven >= 1);
    }

    #[test]
    fn first_generated_seeds_certify_clean() {
        for seed in 0..8 {
            let report = check(&generate(seed));
            assert!(report.ok(), "seed {seed}: {:?}", report.violations);
        }
    }

    #[test]
    fn online_knob_runs_the_stream_and_certifies_clean() {
        let mut ci = hand_instance(
            vec![
                bid(0, 2.0, 1, 2, 1),
                bid(1, 6.0, 2, 3, 2),
                bid(2, 5.0, 1, 3, 2),
            ],
            3,
            1,
        );
        for budget in [0.0, 9.0, 1000.0, f64::INFINITY] {
            ci.online_budget = Some(budget);
            let report = check(&ci);
            assert!(report.ok(), "B={budget}: {:?}", report.violations);
            assert_eq!(report.stats.online_streams, 1, "B={budget}");
            if budget > 0.0 && budget.is_finite() {
                assert!(report.stats.online_probes > 0, "B={budget}");
            }
        }
    }

    #[test]
    fn online_knob_survives_the_empty_arrival_prefix() {
        let mut ci = hand_instance(vec![], 3, 1);
        ci.clients = vec![(1.0, 1.0)];
        ci.online_budget = Some(12.0);
        let report = check(&ci);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.stats.online_streams, 1);
    }

    #[test]
    fn online_generated_seeds_certify_clean() {
        let mut streamed = 0;
        for seed in 0..40 {
            let ci = generate(seed);
            let report = check(&ci);
            assert!(report.ok(), "seed {seed}: {:?}", report.violations);
            streamed += report.stats.online_streams;
        }
        assert!(streamed > 0, "the online knob never fired in 40 seeds");
    }
}

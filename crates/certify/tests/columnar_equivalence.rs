//! Columnar-path equivalence over the certifier's shape families.
//!
//! The winner-determination hot path runs on the struct-of-arrays store of
//! `fl_auction::columnar`; the row-form full scan is retained as the
//! equivalence oracle. This suite drives both paths across every
//! degenerate [`Shape`] family of the certifier generator — the instances
//! that historically break greedy/payment code — and requires bit-identical
//! solutions (winners, schedules, payments, certificates) and selection
//! traces. It also property-tests the `ColumnarBids` round-trip on the
//! same qualified bid sets.

use fl_certify::{generate, Shape, SplitMix64};

use fl_auction::{qualify, AWinner, ColumnarBids, QualifiedBid, Wdp};

/// Enough seeds that every one of the 7 shape families appears many times
/// (the shape is the first draw of the seeded generator).
const SEEDS: u64 = 350;

/// Every (seed, horizon) qualified WDP of the generator's families.
fn for_each_wdp(mut f: impl FnMut(u64, &str, u32, &Wdp)) {
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for seed in 0..SEEDS {
        let cert = generate(seed);
        seen.insert(cert.shape.clone());
        let inst = cert.to_instance().expect("generated instances are valid");
        for horizon in 1..=cert.t {
            let wdp = qualify(&inst, horizon);
            f(seed, &cert.shape, horizon, &wdp);
        }
    }
    let all: Vec<&str> = Shape::ALL.iter().map(|s| s.name()).collect();
    for name in all {
        assert!(seen.contains(name), "seed range never produced {name:?}");
    }
}

#[test]
fn columnar_greedy_is_bit_identical_to_full_scan_on_all_shape_families() {
    for_each_wdp(|seed, shape, horizon, wdp| {
        let columnar = AWinner::new().solve_traced(wdp);
        let oracle = AWinner::new().with_full_scan().solve_traced(wdp);
        match (columnar, oracle) {
            (Ok((sol_c, trace_c)), Ok((sol_o, trace_o))) => {
                assert_eq!(
                    sol_c, sol_o,
                    "seed {seed} ({shape}) T̂_g={horizon}: solutions diverged"
                );
                assert_eq!(
                    trace_c, trace_o,
                    "seed {seed} ({shape}) T̂_g={horizon}: traces diverged"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "seed {seed} ({shape}) T̂_g={horizon}"),
            (a, b) => {
                panic!("seed {seed} ({shape}) T̂_g={horizon}: feasibility diverged: {a:?} vs {b:?}")
            }
        }
    });
}

#[test]
fn columnar_bids_round_trip_on_all_shape_families() {
    for_each_wdp(|seed, shape, horizon, wdp| {
        let cols = ColumnarBids::from(wdp.bids());
        assert_eq!(cols.len(), wdp.bids().len());
        assert_eq!(
            cols.to_bids(),
            wdp.bids(),
            "seed {seed} ({shape}) T̂_g={horizon}: round trip diverged"
        );
        for (i, b) in wdp.bids().iter().enumerate() {
            assert_eq!(&cols.get(i), b);
        }
        let distinct: std::collections::BTreeSet<u32> =
            wdp.bids().iter().map(|b| b.bid_ref.client.0).collect();
        assert_eq!(cols.num_clients(), distinct.len());
    });
}

#[test]
fn columnar_bids_round_trip_on_adversarial_random_rows() {
    // Property check on raw rows, independent of instance validation:
    // sparse client ids, duplicate refs, zero prices, non-finite-free but
    // extreme values.
    let mut rng = SplitMix64::new(0xc01a_11ab);
    for _trial in 0..200 {
        let n = rng.below(40) as usize;
        let bids: Vec<QualifiedBid> = (0..n)
            .map(|_| {
                let a = rng.range(1, 30);
                let d = rng.range(a, 40);
                fl_auction::QualifiedBid {
                    bid_ref: fl_auction::BidRef::new(
                        fl_auction::ClientId(rng.next_u64() as u32),
                        rng.range(0, 9),
                    ),
                    price: rng.below(1 << 50) as f64 / 1024.0,
                    accuracy: rng.below(1000) as f64 / 1001.0,
                    window: fl_auction::Window::new(fl_auction::Round(a), fl_auction::Round(d)),
                    rounds: rng.range(1, d - a + 1),
                    round_time: rng.below(1000) as f64,
                }
            })
            .collect();
        let cols = ColumnarBids::from(bids.as_slice());
        assert_eq!(cols.to_bids(), bids);
    }
}

//! Replays every committed corpus counterexample through the full property
//! engine. Each file pinned a real mechanism edge case when it was added;
//! this test is the permanent regression net that keeps them green.

use fl_certify::{check, check_replay, corpus_dir, load_dir};

#[test]
fn every_corpus_entry_replays_clean() {
    let entries = load_dir(&corpus_dir()).expect("corpus must load");
    assert!(
        !entries.is_empty(),
        "the committed corpus must not be empty"
    );
    for (name, ci) in &entries {
        let report = check(ci);
        assert!(
            report.ok(),
            "{name} regressed ({}): {:?}",
            ci.note,
            report.violations
        );
    }
}

/// Every corpus instance must also survive the service-layer journal
/// round trip: recovering an interrupted epoch from the flpd write-ahead
/// journal yields the same decision and bit-identical payments as a
/// fresh solve on the recorded bid set.
#[test]
fn every_corpus_entry_survives_journal_recovery() {
    let entries = load_dir(&corpus_dir()).expect("corpus must load");
    for (name, ci) in &entries {
        let violations = check_replay(ci);
        assert!(
            violations.is_empty(),
            "{name} breaks the journal-replay invariant: {violations:?}"
        );
    }
}

/// The corpus entries are only worth committing while they still exercise
/// the code path they were minimised for; these pins fail loudly if a
/// behaviour change makes one of them vacuous.
#[test]
fn corpus_entries_still_exercise_their_edge_cases() {
    let entries = load_dir(&corpus_dir()).expect("corpus must load");
    let stats_of = |name: &str| {
        let (_, ci) = entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from corpus"));
        check(ci).stats
    };

    // The stall entry must still stall the truthfulness probes (not merely
    // pass): that reclassification is the behaviour it pins.
    let stall = stats_of("stall-threshold-nonmonotone.json");
    assert!(
        stall.stalled_probes >= 1,
        "stall entry no longer stalls: {stall:?}"
    );

    // The dual entries must still reach a proven optimum so the weak
    // duality comparison actually runs.
    for name in ["dual-cert-unrecorded-cheap-bid.json", "dual-above-opt.json"] {
        let s = stats_of(name);
        assert!(s.exact_proven >= 1, "{name} lost its proven optimum: {s:?}");
    }

    // T_0 == T: the sweep must have collapsed to a single candidate.
    let single = stats_of("t0-eq-t-single-horizon.json");
    assert_eq!(single.horizons, 1, "t0_eq_t entry qualifies extra horizons");
}

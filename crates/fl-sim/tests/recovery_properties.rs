//! End-to-end invariants of the fault-tolerant execution layer: coverage
//! repair, standby economics, and determinism.

use std::collections::HashMap;

use fl_auction::{
    run_auction, AuctionConfig, AuctionOutcome, Bid, ClientProfile, Instance, Window,
};
use fl_auction::{ClientId, Round};
use fl_sim::{DataSkew, DatasetSpec, FaultModel, Federation, FlJob, RecoveryPolicy};

/// K = 2, T = 8, twelve full-window clients: two win, ten back every round
/// in the standby pool.
fn setup() -> (Instance, AuctionOutcome, Federation) {
    let cfg = AuctionConfig::builder()
        .max_rounds(8)
        .clients_per_round(2)
        .round_time_limit(100.0)
        .build()
        .unwrap();
    let mut inst = Instance::new(cfg);
    for i in 0..12 {
        let c = inst.add_client(ClientProfile::new(5.0 + 0.3 * i as f64, 10.0).unwrap());
        inst.add_bid(
            c,
            Bid::new(
                10.0 + 2.0 * i as f64,
                0.5,
                Window::new(Round(1), Round(8)),
                8,
            )
            .unwrap(),
        )
        .unwrap();
    }
    let outcome = run_auction(&inst).unwrap();
    let fed = Federation::generate(
        &DatasetSpec {
            dim: 6,
            samples_per_client: 60,
            label_noise: 0.02,
            skew: DataSkew::Iid,
        },
        inst.num_clients(),
        17,
    );
    (inst, outcome, fed)
}

#[test]
fn hybrid_recovery_strictly_improves_sla_over_no_recovery() {
    let (inst, outcome, fed) = setup();
    let faults = [FaultModel::bernoulli(0.3), FaultModel::markov(0.25, 0.35)];
    for fault in faults {
        let mut base_sla = 0.0;
        let mut hybrid_sla = 0.0;
        let mut gaps_seen = false;
        for seed in [1, 2, 3, 4, 5] {
            let base = FlJob::new(0.2)
                .with_faults(fault.clone())
                .run(&inst, &outcome, &fed, seed);
            let hybrid = FlJob::new(0.2)
                .with_faults(fault.clone())
                .with_recovery(RecoveryPolicy::Hybrid {
                    max_attempts: 2,
                    backoff: 5.0,
                })
                .run(&inst, &outcome, &fed, seed);
            gaps_seen |= base.rounds.iter().any(|r| r.coverage_gap > 0);
            base_sla += base.sla_met_fraction;
            hybrid_sla += hybrid.sla_met_fraction;
            assert!(hybrid.coverage_ratio >= base.coverage_ratio - 1e-12);
        }
        assert!(gaps_seen, "the baseline must actually suffer gaps");
        assert!(
            hybrid_sla > base_sla,
            "hybrid recovery must strictly improve SLA: {hybrid_sla} vs {base_sla} under {fault:?}"
        );
    }
}

#[test]
fn deep_standby_pool_closes_every_gap() {
    // Ten standbys back each round while at most two winners can drop, so
    // substitution (plus retries) closes every gap at these seeds.
    let (inst, outcome, fed) = setup();
    for seed in [1, 2, 3, 4, 5, 6, 7, 8] {
        let report = FlJob::new(0.2)
            .with_faults(FaultModel::bernoulli(0.3))
            .with_recovery(RecoveryPolicy::Hybrid {
                max_attempts: 2,
                backoff: 5.0,
            })
            .run(&inst, &outcome, &fed, seed);
        for r in &report.rounds {
            assert_eq!(
                r.coverage_gap, 0,
                "seed {seed} round {} left a gap with a 10-deep pool",
                r.round
            );
        }
        assert_eq!(report.sla_met_fraction, 1.0);
        assert_eq!(report.coverage_ratio, 1.0);
    }
}

#[test]
fn standby_activations_pay_committed_critical_values() {
    let (inst, outcome, fed) = setup();
    let pool = outcome.standby_pool(&inst);
    let report = FlJob::new(0.2)
        .with_faults(FaultModel::bernoulli(0.4))
        .with_recovery(RecoveryPolicy::Standby)
        .run(&inst, &outcome, &fed, 2);
    let activated: usize = report.rounds.iter().map(|r| r.substitutes.len()).sum();
    assert!(activated > 0, "40% dropout must trigger substitutions");
    let mut activations_per_client: HashMap<ClientId, u32> = HashMap::new();
    for r in &report.rounds {
        let entries = pool.for_round(r.round);
        let mut expected_spend = 0.0;
        for s in &r.substitutes {
            let e = entries
                .iter()
                .find(|e| e.bid_ref.client == *s)
                .expect("substitute must come from the round's pool");
            // Individual rationality: the activation payment covers the
            // standby's claimed per-round cost.
            assert!(e.payment_per_round >= e.price_per_round - 1e-12);
            expected_spend += e.payment_per_round;
            *activations_per_client.entry(*s).or_insert(0) += 1;
            assert!(
                r.participants.contains(s),
                "substitutes participate in the round they repair"
            );
        }
        assert!(
            (r.repair_spend - expected_spend).abs() < 1e-9,
            "round {} spend {} != committed payments {}",
            r.round,
            r.repair_spend,
            expected_spend
        );
    }
    // Battery budgets bound activations across the whole run.
    for (client, count) in activations_per_client {
        let budget = pool
            .iter()
            .flat_map(|(_, es)| es.iter())
            .find(|e| e.bid_ref.client == client)
            .unwrap()
            .budget;
        assert!(count <= budget, "{client:?} exceeded its battery budget");
    }
    let total: f64 = report.rounds.iter().map(|r| r.repair_spend).sum();
    assert!((report.repair_spend - total).abs() < 1e-9);
}

#[test]
fn repaired_traces_are_deterministic_per_seed() {
    let (inst, outcome, fed) = setup();
    for policy in [
        RecoveryPolicy::None,
        RecoveryPolicy::Retry {
            max_attempts: 3,
            backoff: 2.0,
        },
        RecoveryPolicy::Standby,
        RecoveryPolicy::Hybrid {
            max_attempts: 2,
            backoff: 2.0,
        },
    ] {
        let job = FlJob::new(0.2)
            .with_faults(FaultModel::markov(0.2, 0.4))
            .with_recovery(policy);
        let a = job.run(&inst, &outcome, &fed, 9);
        let b = job.run(&inst, &outcome, &fed, 9);
        assert_eq!(a, b, "same seed must replay identically under {policy:?}");
        let c = job.run(&inst, &outcome, &fed, 10);
        assert_ne!(a.rounds, c.rounds, "different seeds must diverge");
    }
}

#[test]
fn retry_recovers_winners_without_spending() {
    let (inst, outcome, fed) = setup();
    let mut recovered = 0usize;
    for seed in 0..10 {
        let report = FlJob::new(0.2)
            .with_faults(FaultModel::bernoulli(0.4))
            .with_recovery(RecoveryPolicy::Retry {
                max_attempts: 3,
                backoff: 5.0,
            })
            .run(&inst, &outcome, &fed, seed);
        for r in &report.rounds {
            recovered += r.retried.len();
            for c in &r.retried {
                assert!(r.participants.contains(c));
                assert!(
                    !r.dropped.contains(c),
                    "recovered winners left the drop list"
                );
            }
            assert_eq!(r.repair_spend, 0.0, "retries must be free");
            assert!(r.substitutes.is_empty(), "retry policy never substitutes");
        }
        assert_eq!(report.repair_spend, 0.0);
    }
    assert!(
        recovered > 0,
        "3 attempts at 40% dropout must recover someone"
    );
}

#[test]
fn per_client_fault_map_targets_the_right_clients() {
    let (inst, outcome, fed) = setup();
    // The first winner always drops; everyone else is perfectly reliable.
    let fragile = outcome.solution().winners()[0].bid_ref.client;
    let mut rates = HashMap::new();
    rates.insert(fragile, 1.0);
    let report = FlJob::new(0.2)
        .with_faults(FaultModel::per_client(rates, 0.0))
        .run(&inst, &outcome, &fed, 0);
    for r in &report.rounds {
        assert_eq!(r.dropped, vec![fragile]);
        assert!(!r.participants.contains(&fragile));
    }
}

//! Straggler injection — the paper's other future-work concern
//! (§VIII: "there may be some variations in the training process due to
//! hardware specifications").
//!
//! The auction admits bids assuming their *nominal* per-round time
//! `T_l(θ)·t^cmp + t^com` fits the budget `t_max` (constraint (6d)). Real
//! devices jitter: thermal throttling, background load, flaky radios. A
//! [`StragglerModel`] multiplies each participation's nominal time by a
//! random slowdown factor; the synchronous server waits only until
//! `t_max`, so a participation that finishes late is **discarded** (its
//! update misses the aggregation) even though the client did the work.

use rand::rngs::StdRng;
use rand::RngExt;

/// Random multiplicative slowdown per participation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerModel {
    probability: f64,
    factor: (f64, f64),
}

impl StragglerModel {
    /// With `probability`, a participation's round time is multiplied by a
    /// factor drawn uniformly from `factor` (its bounds must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]` or the factor range
    /// is not an interval with both ends ≥ 1.
    pub fn new(probability: f64, factor: (f64, f64)) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "straggler probability must lie in [0, 1], got {probability}"
        );
        assert!(
            factor.0 >= 1.0 && factor.1 >= factor.0 && factor.1.is_finite(),
            "slowdown factors must satisfy 1 ≤ lo ≤ hi, got {factor:?}"
        );
        StragglerModel {
            probability,
            factor,
        }
    }

    /// A mild default: 20% of participations slow down by 1.2–2×.
    pub fn mild() -> Self {
        StragglerModel::new(0.2, (1.2, 2.0))
    }

    /// The configured probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Samples this participation's slowdown multiplier (1.0 = on time).
    pub fn sample_factor(&self, rng: &mut StdRng) -> f64 {
        if self.probability > 0.0 && rng.random_range(0.0..1.0) < self.probability {
            if self.factor.1 > self.factor.0 {
                rng.random_range(self.factor.0..=self.factor.1)
            } else {
                self.factor.0
            }
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_probability_never_slows() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = StragglerModel::new(0.0, (1.5, 2.0));
        assert!((0..500).all(|_| m.sample_factor(&mut rng) == 1.0));
    }

    #[test]
    fn factors_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = StragglerModel::new(1.0, (1.2, 3.0));
        for _ in 0..500 {
            let f = m.sample_factor(&mut rng);
            assert!((1.2..=3.0).contains(&f));
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = StragglerModel::mild();
        let slowed = (0..20_000)
            .filter(|_| m.sample_factor(&mut rng) > 1.0)
            .count();
        let rate = slowed as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "slowdown factors")]
    fn sub_unit_factor_panics() {
        let _ = StragglerModel::new(0.5, (0.5, 2.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        let _ = StragglerModel::new(-0.1, (1.0, 2.0));
    }
}

//! Federation-level evaluation helpers.

use crate::data::ClientData;
use crate::model::{gradient, norm, LinearModel};

/// Mean loss-gradient norm of `model` over the union of the given shards
/// (the global objective `J` is the sample-weighted mean of local
/// objectives, so its gradient is the weighted mean of local gradients).
pub fn global_grad_norm(model: &LinearModel, shards: &[&ClientData]) -> f64 {
    let total: usize = shards.iter().map(|s| s.len()).sum();
    if total == 0 {
        return 0.0;
    }
    let d = model.weights().len();
    let mut g = vec![0.0; d];
    for shard in shards {
        let gi = gradient(model, shard);
        let w = shard.len() as f64 / total as f64;
        for (acc, v) in g.iter_mut().zip(&gi) {
            *acc += w * v;
        }
    }
    norm(&g)
}

/// Sample-weighted classification accuracy of `model` over the shards.
pub fn global_accuracy(model: &LinearModel, shards: &[&ClientData]) -> f64 {
    let total: usize = shards.iter().map(|s| s.len()).sum();
    if total == 0 {
        return 1.0;
    }
    shards
        .iter()
        .map(|s| model.accuracy(s) * s.len() as f64)
        .sum::<f64>()
        / total as f64
}

/// Sample-weighted mean loss over the shards.
pub fn global_loss(model: &LinearModel, shards: &[&ClientData]) -> f64 {
    let total: usize = shards.iter().map(|s| s.len()).sum();
    if total == 0 {
        return 0.0;
    }
    shards
        .iter()
        .map(|s| crate::model::loss(model, s) * s.len() as f64)
        .sum::<f64>()
        / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataSkew, DatasetSpec, Federation};

    #[test]
    fn weighted_aggregates_match_manual_union() {
        let fed = Federation::generate(
            &DatasetSpec {
                dim: 4,
                samples_per_client: 30,
                label_noise: 0.0,
                skew: DataSkew::Iid,
            },
            2,
            5,
        );
        let model = LinearModel::from_weights(vec![0.1; 5]);
        let shards: Vec<&ClientData> = fed.shards.iter().collect();
        // Union shard.
        let mut features = fed.shards[0].features.clone();
        features.extend(fed.shards[1].features.clone());
        let mut labels = fed.shards[0].labels.clone();
        labels.extend(fed.shards[1].labels.clone());
        let union = ClientData { features, labels };
        let direct = norm(&gradient(&model, &union));
        assert!((global_grad_norm(&model, &shards) - direct).abs() < 1e-10);
        assert!((global_loss(&model, &shards) - crate::model::loss(&model, &union)).abs() < 1e-10);
        assert!((global_accuracy(&model, &shards) - model.accuracy(&union)).abs() < 1e-10);
    }

    #[test]
    fn empty_shard_list_is_neutral() {
        let model = LinearModel::zeros(3);
        assert_eq!(global_grad_norm(&model, &[]), 0.0);
        assert_eq!(global_accuracy(&model, &[]), 1.0);
        assert_eq!(global_loss(&model, &[]), 0.0);
    }
}

//! Client-dropout injection — the paper's future-work scenario
//! ("clients drop out with high probability since the network connection
//! can be unstable", §VIII).

use rand::rngs::StdRng;
use rand::RngExt;

/// Bernoulli per-participation dropout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropoutModel {
    probability: f64,
}

impl DropoutModel {
    /// Creates a dropout model; each scheduled participation independently
    /// fails with `probability`.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn new(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "dropout probability must lie in [0, 1], got {probability}"
        );
        DropoutModel { probability }
    }

    /// The configured probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Samples whether one scheduled participation drops.
    pub fn drops(&self, rng: &mut StdRng) -> bool {
        self.probability > 0.0 && rng.random_range(0.0..1.0) < self.probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_probability_never_drops() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DropoutModel::new(0.0);
        assert!((0..1000).all(|_| !m.drops(&mut rng)));
    }

    #[test]
    fn one_probability_always_drops() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DropoutModel::new(1.0);
        assert!((0..100).all(|_| m.drops(&mut rng)));
    }

    #[test]
    fn empirical_rate_matches_configuration() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DropoutModel::new(0.3);
        let drops = (0..20_000).filter(|_| m.drops(&mut rng)).count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_panics() {
        let _ = DropoutModel::new(1.5);
    }
}

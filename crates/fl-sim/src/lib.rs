//! Federated-learning simulator that executes auction outcomes.
//!
//! The paper's mechanism decides *who* trains, *when*, at *what local
//! accuracy* and *for how many rounds*; this crate supplies the substrate
//! that actually runs such a job, closing the loop between the economics
//! and the learning:
//!
//! * [`Federation`] generates synthetic per-client datasets (IID or
//!   non-IID);
//! * [`LocalTrainer`] performs local gradient descent to the committed
//!   relative accuracy `θ` (footnote 1 / Eq. 2 of the paper);
//! * [`FlJob`] runs FedAvg over the winners' schedule from an
//!   [`fl_auction::AuctionOutcome`], with optional [`DropoutModel`]
//!   injection (the paper's future-work scenario), and reports per-round
//!   gradient norms, losses, and simulated wall clock.
//!
//! # Example
//!
//! ```
//! use fl_auction::{run_auction, AuctionConfig, Bid, ClientProfile, Instance, Round, Window};
//! use fl_sim::{DatasetSpec, Federation, FlJob};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = AuctionConfig::builder()
//!     .max_rounds(6)
//!     .clients_per_round(2)
//!     .round_time_limit(100.0)
//!     .build()?;
//! let mut inst = Instance::new(cfg);
//! for i in 0..4 {
//!     let c = inst.add_client(ClientProfile::new(5.0, 10.0)?);
//!     inst.add_bid(c, Bid::new(10.0 + i as f64, 0.5, Window::new(Round(1), Round(6)), 6)?)?;
//! }
//! let outcome = run_auction(&inst)?;
//! let federation = Federation::generate(&DatasetSpec::default(), inst.num_clients(), 7);
//! let report = FlJob::new(0.3).run(&inst, &outcome, &federation, 0);
//! assert_eq!(report.rounds.len() as u32, outcome.horizon());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports through `fl-telemetry` events, never raw stdio.
#![warn(clippy::print_stdout)]
#![warn(clippy::print_stderr)]

pub mod data;
mod dropout;
mod energy;
pub mod fault;
mod local;
pub mod metrics;
pub mod model;
pub mod objective;
mod server;
mod straggler;

pub use data::{ClientData, DataSkew, DatasetSpec, Federation};
pub use dropout::DropoutModel;
pub use energy::{Battery, EnergyModel};
pub use fault::{FaultModel, FaultRun};
pub use local::{LocalResult, LocalTrainer};
pub use model::LinearModel;
pub use objective::{LogisticObjective, Objective, RidgeObjective};
pub use server::{FlJob, RecoveryPolicy, RoundRecord, TrainingReport};
pub use straggler::StragglerModel;

//! Synthetic per-client datasets for the federated training simulator.
//!
//! Each client holds a private shard of a binary-classification problem.
//! A hidden "ground truth" weight vector generates labels through a
//! logistic model; clients draw their features from client-specific
//! distributions, so the federation is IID or non-IID by configuration —
//! the heterogeneity FedAvg-style training actually contends with.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How client feature distributions relate to each other.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataSkew {
    /// All clients sample features from the same standard normal.
    Iid,
    /// Client `i`'s features are shifted by a client-specific offset of the
    /// given magnitude — label distributions drift across clients.
    Shifted {
        /// Offset magnitude (0 reduces to IID).
        magnitude: f64,
    },
}

/// Declarative description of the synthetic federation data.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Feature dimension (the bias term is added internally).
    pub dim: usize,
    /// Samples held by each client.
    pub samples_per_client: usize,
    /// Label-noise probability: each label flips with this probability.
    pub label_noise: f64,
    /// Feature-distribution skew across clients.
    pub skew: DataSkew,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            dim: 10,
            samples_per_client: 50,
            label_noise: 0.05,
            skew: DataSkew::Iid,
        }
    }
}

/// One client's local shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientData {
    /// Row-major feature matrix, `samples × (dim + 1)` with a trailing 1.0
    /// bias column.
    pub features: Vec<Vec<f64>>,
    /// Labels in `{0.0, 1.0}`.
    pub labels: Vec<f64>,
}

impl ClientData {
    /// Number of local samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// The generated federation: the hidden truth and every client's shard.
#[derive(Debug, Clone)]
pub struct Federation {
    /// Ground-truth weights (including bias) that generated the labels.
    pub truth: Vec<f64>,
    /// One shard per client.
    pub shards: Vec<ClientData>,
}

impl Federation {
    /// Generates `clients` shards from `spec`, deterministically per seed.
    ///
    /// # Panics
    ///
    /// Panics if `spec.dim == 0` or `spec.samples_per_client == 0`.
    pub fn generate(spec: &DatasetSpec, clients: usize, seed: u64) -> Federation {
        assert!(spec.dim > 0, "feature dimension must be positive");
        assert!(
            spec.samples_per_client > 0,
            "clients need at least one sample"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let d = spec.dim + 1; // with bias
        let truth: Vec<f64> = (0..d).map(|_| gaussian(&mut rng)).collect();
        let mut shards = Vec::with_capacity(clients);
        for c in 0..clients {
            let offset: Vec<f64> = match spec.skew {
                DataSkew::Iid => vec![0.0; spec.dim],
                DataSkew::Shifted { magnitude } => (0..spec.dim)
                    .map(|k| {
                        let phase = (c as f64) * 0.7 + (k as f64) * 1.3;
                        magnitude * phase.sin()
                    })
                    .collect(),
            };
            let mut features = Vec::with_capacity(spec.samples_per_client);
            let mut labels = Vec::with_capacity(spec.samples_per_client);
            for _ in 0..spec.samples_per_client {
                let mut x: Vec<f64> = (0..spec.dim)
                    .map(|k| gaussian(&mut rng) + offset[k])
                    .collect();
                x.push(1.0); // bias
                let logit: f64 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
                let p = 1.0 / (1.0 + (-logit).exp());
                let mut y = f64::from(rng.random_range(0.0..1.0) < p);
                if rng.random_range(0.0..1.0) < spec.label_noise {
                    y = 1.0 - y;
                }
                features.push(x);
                labels.push(y);
            }
            shards.push(ClientData { features, labels });
        }
        Federation { truth, shards }
    }
}

impl Federation {
    /// Splits every shard into train/holdout parts: the last
    /// `⌈holdout_frac·n⌉` samples of each shard move to a per-client
    /// holdout shard (samples were drawn i.i.d., so a suffix split is
    /// unbiased). Returns `(train, holdout)` federations with the same
    /// ground truth.
    ///
    /// # Panics
    ///
    /// Panics if `holdout_frac` is outside `(0, 1)`.
    pub fn split_holdout(&self, holdout_frac: f64) -> (Federation, Federation) {
        assert!(
            holdout_frac > 0.0 && holdout_frac < 1.0,
            "holdout fraction must lie strictly inside (0, 1), got {holdout_frac}"
        );
        let mut train_shards = Vec::with_capacity(self.shards.len());
        let mut holdout_shards = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let n = shard.len();
            let h = ((n as f64) * holdout_frac).ceil() as usize;
            let cut = n.saturating_sub(h).max(1.min(n));
            train_shards.push(ClientData {
                features: shard.features[..cut].to_vec(),
                labels: shard.labels[..cut].to_vec(),
            });
            holdout_shards.push(ClientData {
                features: shard.features[cut..].to_vec(),
                labels: shard.labels[cut..].to_vec(),
            });
        }
        (
            Federation {
                truth: self.truth.clone(),
                shards: train_shards,
            },
            Federation {
                truth: self.truth.clone(),
                shards: holdout_shards,
            },
        )
    }
}

/// Standard normal via Box–Muller (keeps us on `rand` without the `distr`
/// feature surface).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shapes() {
        let spec = DatasetSpec::default();
        let fed = Federation::generate(&spec, 5, 1);
        assert_eq!(fed.shards.len(), 5);
        assert_eq!(fed.truth.len(), spec.dim + 1);
        for s in &fed.shards {
            assert_eq!(s.len(), spec.samples_per_client);
            assert!(!s.is_empty());
            assert!(s.features.iter().all(|x| x.len() == spec.dim + 1));
            assert!(s.features.iter().all(|x| x[spec.dim] == 1.0), "bias column");
            assert!(s.labels.iter().all(|&y| y == 0.0 || y == 1.0));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::default();
        let a = Federation::generate(&spec, 3, 9);
        let b = Federation::generate(&spec, 3, 9);
        let c = Federation::generate(&spec, 3, 10);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.shards[0], b.shards[0]);
        assert_ne!(a.truth, c.truth);
    }

    #[test]
    fn labels_correlate_with_truth() {
        // With no noise, the majority of labels must agree with the sign of
        // the ground-truth logit.
        let spec = DatasetSpec {
            label_noise: 0.0,
            samples_per_client: 400,
            ..DatasetSpec::default()
        };
        let fed = Federation::generate(&spec, 1, 3);
        let shard = &fed.shards[0];
        let agree = shard
            .features
            .iter()
            .zip(&shard.labels)
            .filter(|(x, &y)| {
                let logit: f64 = x.iter().zip(&fed.truth).map(|(a, b)| a * b).sum();
                (logit > 0.0) == (y == 1.0)
            })
            .count();
        assert!(
            agree as f64 > 0.7 * shard.len() as f64,
            "only {agree}/{} agree",
            shard.len()
        );
    }

    #[test]
    fn shifted_skew_moves_feature_means() {
        let spec = DatasetSpec {
            skew: DataSkew::Shifted { magnitude: 3.0 },
            samples_per_client: 300,
            ..DatasetSpec::default()
        };
        let fed = Federation::generate(&spec, 2, 4);
        let mean = |s: &ClientData, k: usize| -> f64 {
            s.features.iter().map(|x| x[k]).sum::<f64>() / s.len() as f64
        };
        // At magnitude 3 at least one coordinate must differ visibly.
        let diff: f64 = (0..spec.dim)
            .map(|k| (mean(&fed.shards[0], k) - mean(&fed.shards[1], k)).abs())
            .fold(0.0, f64::max);
        assert!(diff > 0.5, "max mean difference {diff}");
    }

    #[test]
    fn holdout_split_partitions_every_shard() {
        let spec = DatasetSpec {
            samples_per_client: 40,
            ..DatasetSpec::default()
        };
        let fed = Federation::generate(&spec, 4, 8);
        let (train, holdout) = fed.split_holdout(0.25);
        assert_eq!(train.truth, fed.truth);
        for i in 0..4 {
            assert_eq!(train.shards[i].len() + holdout.shards[i].len(), 40);
            assert_eq!(holdout.shards[i].len(), 10);
            // Partition, not copy: concatenation reproduces the original.
            let mut all = train.shards[i].features.clone();
            all.extend(holdout.shards[i].features.clone());
            assert_eq!(all, fed.shards[i].features);
        }
    }

    #[test]
    fn holdout_generalization_tracks_training() {
        // A model trained on the train split should classify the holdout
        // far better than chance (IID split of separable data).
        use crate::model::{gradient, LinearModel};
        let spec = DatasetSpec {
            dim: 6,
            samples_per_client: 200,
            label_noise: 0.0,
            skew: DataSkew::Iid,
        };
        let fed = Federation::generate(&spec, 1, 12);
        let (train, holdout) = fed.split_holdout(0.3);
        let mut model = LinearModel::zeros(7);
        for _ in 0..300 {
            let g = gradient(&model, &train.shards[0]);
            for (w, gk) in model.weights_mut().iter_mut().zip(&g) {
                *w -= 0.5 * gk;
            }
        }
        // Labels are sampled from the logistic probability (not the sign),
        // so Bayes accuracy itself varies with the drawn truth vector;
        // assert generalisation rather than an absolute level.
        let train_acc = model.accuracy(&train.shards[0]);
        let holdout_acc = model.accuracy(&holdout.shards[0]);
        assert!(holdout_acc > 0.6, "holdout accuracy {holdout_acc}");
        assert!(
            holdout_acc > train_acc - 0.15,
            "generalisation gap too large: train {train_acc} vs holdout {holdout_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "holdout fraction")]
    fn bad_holdout_fraction_panics() {
        let fed = Federation::generate(&DatasetSpec::default(), 1, 0);
        let _ = fed.split_holdout(1.0);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_dim_panics() {
        let spec = DatasetSpec {
            dim: 0,
            ..DatasetSpec::default()
        };
        let _ = Federation::generate(&spec, 1, 0);
    }
}

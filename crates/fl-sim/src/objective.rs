//! Pluggable training objectives.
//!
//! The paper's convergence framework (relative gradient-norm accuracies,
//! Eqs. 1–2) applies to any smooth strongly-convex objective; the
//! simulator therefore abstracts the loss behind [`Objective`]. Two
//! instances ship: the default `ℓ2`-regularised logistic loss (matching
//! [`crate::model`]) and ridge regression, so experiments can check that
//! nothing downstream depends on the specific loss.

use crate::data::ClientData;
use crate::model::{sigmoid, LinearModel};

/// A differentiable training objective over a linear model.
pub trait Objective {
    /// Mean loss of `model` on `data` (0 on empty shards).
    fn loss(&self, model: &LinearModel, data: &ClientData) -> f64;

    /// Gradient of [`Objective::loss`] with respect to the weights.
    fn gradient(&self, model: &LinearModel, data: &ClientData) -> Vec<f64>;

    /// Short name for logs and reports.
    fn name(&self) -> &str;
}

/// `ℓ2`-regularised logistic loss — the simulator's default, delegating
/// to [`crate::model::loss`]/[`crate::model::gradient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogisticObjective;

impl Objective for LogisticObjective {
    fn loss(&self, model: &LinearModel, data: &ClientData) -> f64 {
        crate::model::loss(model, data)
    }

    fn gradient(&self, model: &LinearModel, data: &ClientData) -> Vec<f64> {
        crate::model::gradient(model, data)
    }

    fn name(&self) -> &str {
        "logistic"
    }
}

/// Ridge regression: mean squared error `½(w·x − y)²` plus the same `ℓ2`
/// term as the logistic objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RidgeObjective {
    /// `ℓ2` regularisation strength.
    pub l2: f64,
}

impl Default for RidgeObjective {
    fn default() -> Self {
        RidgeObjective {
            l2: crate::model::L2_REG,
        }
    }
}

impl Objective for RidgeObjective {
    fn loss(&self, model: &LinearModel, data: &ClientData) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let n = data.len() as f64;
        let mse: f64 = data
            .features
            .iter()
            .zip(&data.labels)
            .map(|(x, &y)| {
                let e = model.score(x) - y;
                0.5 * e * e
            })
            .sum();
        let reg: f64 = model.weights().iter().map(|w| w * w).sum::<f64>() * (self.l2 / 2.0);
        mse / n + reg
    }

    fn gradient(&self, model: &LinearModel, data: &ClientData) -> Vec<f64> {
        let d = model.weights().len();
        let mut g = vec![0.0; d];
        if data.is_empty() {
            return g;
        }
        let n = data.len() as f64;
        for (x, &y) in data.features.iter().zip(&data.labels) {
            let err = model.score(x) - y;
            for (gk, xk) in g.iter_mut().zip(x) {
                *gk += err * xk;
            }
        }
        for (gk, wk) in g.iter_mut().zip(model.weights()) {
            *gk = *gk / n + self.l2 * wk;
        }
        g
    }

    fn name(&self) -> &str {
        "ridge"
    }
}

/// The probability view of the logistic objective, re-exported for
/// calibration checks in experiments.
pub fn logistic_probability(model: &LinearModel, x: &[f64]) -> f64 {
    sigmoid(model.score(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataSkew, DatasetSpec, Federation};

    fn shard() -> ClientData {
        Federation::generate(
            &DatasetSpec {
                dim: 4,
                samples_per_client: 80,
                label_noise: 0.0,
                skew: DataSkew::Iid,
            },
            1,
            19,
        )
        .shards
        .remove(0)
    }

    #[test]
    fn ridge_gradient_matches_finite_differences() {
        let data = shard();
        let obj = RidgeObjective::default();
        let model = LinearModel::from_weights(vec![0.2, -0.1, 0.4, 0.0, 0.3]);
        let g = obj.gradient(&model, &data);
        let eps = 1e-6;
        for (k, &gk) in g.iter().enumerate() {
            let mut plus = model.clone();
            plus.weights_mut()[k] += eps;
            let mut minus = model.clone();
            minus.weights_mut()[k] -= eps;
            let numeric = (obj.loss(&plus, &data) - obj.loss(&minus, &data)) / (2.0 * eps);
            assert!(
                (numeric - gk).abs() < 1e-5,
                "coordinate {k}: analytic {gk} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn logistic_objective_delegates_to_model() {
        let data = shard();
        let obj = LogisticObjective;
        let model = LinearModel::from_weights(vec![0.1; 5]);
        assert_eq!(obj.loss(&model, &data), crate::model::loss(&model, &data));
        assert_eq!(
            obj.gradient(&model, &data),
            crate::model::gradient(&model, &data)
        );
        assert_eq!(obj.name(), "logistic");
        assert_eq!(RidgeObjective::default().name(), "ridge");
    }

    #[test]
    fn gradient_descent_minimises_ridge() {
        let data = shard();
        let obj = RidgeObjective::default();
        let mut model = LinearModel::zeros(5);
        let l0 = obj.loss(&model, &data);
        for _ in 0..300 {
            let g = obj.gradient(&model, &data);
            for (w, gk) in model.weights_mut().iter_mut().zip(&g) {
                *w -= 0.2 * gk;
            }
        }
        let l1 = obj.loss(&model, &data);
        assert!(l1 < l0 * 0.7, "ridge loss barely moved: {l0} → {l1}");
    }

    #[test]
    fn empty_shards_are_neutral_for_ridge() {
        let empty = ClientData {
            features: vec![],
            labels: vec![],
        };
        let obj = RidgeObjective::default();
        let model = LinearModel::zeros(3);
        assert_eq!(obj.loss(&model, &empty), 0.0);
        assert_eq!(obj.gradient(&model, &empty), vec![0.0; 3]);
    }
}

//! The FedAvg cloud server, driven by an auction outcome.
//!
//! This closes the loop the paper's system model describes (§III–IV): the
//! auction picks winners, their local accuracies, and a per-round roster;
//! the server then runs global iterations in which exactly the scheduled
//! winners train locally to their *committed* `θ_ij` and the server
//! aggregates. The run validates the economic layer's promises — the job
//! finishes within `T_g` rounds and per-round wall clock stays within
//! `t_max`.
//!
//! # Fault tolerance
//!
//! Faults are injected through a [`FaultModel`] (i.i.d., bursty Markov, or
//! per-client — see [`crate::fault`]). When a round's confirmed
//! participation falls below the coverage floor `K_need`, the configured
//! [`RecoveryPolicy`] repairs the round in place:
//!
//! * **Retry** re-contacts dropped winners with a backoff delay charged to
//!   the round's wall clock (no extra payment — winners are already under
//!   contract);
//! * **Standby** activates the auction's pre-priced standby pool
//!   ([`fl_auction::StandbyPool`]) in rank order, paying each delivered
//!   activation its committed critical value and debiting its battery
//!   budget;
//! * **Hybrid** retries first (free), then substitutes.
//!
//! Repair happens in a deadline-extension window: the backoff delay and
//! substitute round times extend the recorded wall clock, but each repair
//! participation must still individually train within `t_max`.

use std::collections::HashMap;

use fl_auction::{AuctionOutcome, ClientId, Instance, Round, StandbyPool};
use fl_telemetry::{counter, debug, sample, span};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::data::Federation;
use crate::dropout::DropoutModel;
use crate::fault::{FaultModel, FaultRun};
use crate::local::LocalTrainer;
use crate::metrics::{global_accuracy, global_grad_norm, global_loss};
use crate::model::LinearModel;
use crate::straggler::StragglerModel;

/// How the server reacts when a round's confirmed participation falls
/// below the coverage floor `K_need`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryPolicy {
    /// Accept the gap: record it and aggregate whatever arrived.
    None,
    /// Re-contact each dropped winner up to `max_attempts` times, waiting
    /// `backoff · attempt` time units before attempt number `attempt`.
    Retry {
        /// Re-contact attempts per dropped winner.
        max_attempts: u32,
        /// Wall-clock delay multiplier per attempt.
        backoff: f64,
    },
    /// Substitute from the auction's ranked standby pool, cheapest first.
    Standby,
    /// Retry dropped winners first (free), then fill the remaining gap
    /// from the standby pool.
    Hybrid {
        /// Re-contact attempts per dropped winner.
        max_attempts: u32,
        /// Wall-clock delay multiplier per attempt.
        backoff: f64,
    },
}

impl RecoveryPolicy {
    fn retry_params(&self) -> Option<(u32, f64)> {
        match *self {
            RecoveryPolicy::Retry {
                max_attempts,
                backoff,
            }
            | RecoveryPolicy::Hybrid {
                max_attempts,
                backoff,
            } => Some((max_attempts, backoff)),
            _ => None,
        }
    }

    fn uses_standbys(&self) -> bool {
        matches!(
            self,
            RecoveryPolicy::Standby | RecoveryPolicy::Hybrid { .. }
        )
    }
}

/// One global iteration's record.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// The global iteration.
    pub round: Round,
    /// Clients that trained and reported back.
    pub participants: Vec<ClientId>,
    /// Scheduled clients that dropped out (empty without a dropout model).
    pub dropped: Vec<ClientId>,
    /// Clients whose update missed the `t_max` deadline and was discarded
    /// (empty without a straggler model).
    pub late: Vec<ClientId>,
    /// Local iterations used per participant (parallel to `participants`).
    pub local_iterations: Vec<u32>,
    /// Standby clients activated this round (subset of `participants`).
    pub substitutes: Vec<ClientId>,
    /// Dropped winners recovered by re-contact (subset of `participants`).
    pub retried: Vec<ClientId>,
    /// Standby remuneration spent repairing this round.
    pub repair_spend: f64,
    /// Confirmed participants still missing below `K_need` after repair.
    pub coverage_gap: u32,
    /// Simulated synchronous round duration:
    /// `max_i T_l(θ_i)·t_i^cmp + t_i^com` over participants.
    pub wall_clock: f64,
    /// Global gradient norm after aggregation.
    pub grad_norm: f64,
    /// Global loss after aggregation.
    pub loss: f64,
}

/// Full training trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Per-round records, in order.
    pub rounds: Vec<RoundRecord>,
    /// Gradient norm of the initial (zero) model on the winners' data.
    pub initial_grad_norm: f64,
    /// First round (1-based) at which the relative global accuracy target
    /// was met, if ever.
    pub reached_at: Option<u32>,
    /// Final global model.
    pub final_model: LinearModel,
    /// Sum of simulated per-round wall clocks.
    pub total_wall_clock: f64,
    /// Weighted classification accuracy of the final model on the winners'
    /// training shards.
    pub final_accuracy: f64,
    /// Total standby remuneration spent across all rounds.
    pub repair_spend: f64,
    /// Mean over rounds of `min(confirmed, K_need) / K_need` — 1.0 when
    /// every round met its floor.
    pub coverage_ratio: f64,
    /// Fraction of rounds whose confirmed participation reached `K_need`.
    pub sla_met_fraction: f64,
}

/// Configuration of a federated run over an auction outcome.
#[derive(Debug, Clone)]
pub struct FlJob {
    trainer: LocalTrainer,
    /// Relative global accuracy ε: stop once
    /// `‖∇J(w)‖ ≤ ε·‖∇J(w₀)‖` (mirrors footnote 1 of the paper).
    global_accuracy: f64,
    faults: Option<FaultModel>,
    stragglers: Option<StragglerModel>,
    recovery: RecoveryPolicy,
    coverage_floor: Option<u32>,
}

impl FlJob {
    /// A job with the default local trainer, target `ε`, no faults, and no
    /// recovery.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `(0, 1]`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "global accuracy ε must lie in (0, 1], got {epsilon}"
        );
        FlJob {
            trainer: LocalTrainer::default(),
            global_accuracy: epsilon,
            faults: None,
            stragglers: None,
            recovery: RecoveryPolicy::None,
            coverage_floor: None,
        }
    }

    /// Overrides the local trainer.
    pub fn with_trainer(mut self, trainer: LocalTrainer) -> Self {
        self.trainer = trainer;
        self
    }

    /// Injects i.i.d. client dropout (the paper's future-work scenario).
    /// Shorthand for [`FlJob::with_faults`] with a Bernoulli model.
    pub fn with_dropout(mut self, dropout: DropoutModel) -> Self {
        self.faults = Some(FaultModel::Bernoulli(dropout));
        self
    }

    /// Injects client unavailability through an arbitrary [`FaultModel`]
    /// (Bernoulli, bursty Gilbert–Elliott churn, or per-client rates).
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Injects hardware jitter: slowed participations that miss the
    /// `t_max` deadline are discarded by the synchronous server.
    pub fn with_stragglers(mut self, stragglers: StragglerModel) -> Self {
        self.stragglers = Some(stragglers);
        self
    }

    /// Sets how the server repairs rounds whose confirmed participation
    /// falls below the coverage floor.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Overrides the coverage floor `K_need` (defaults to the auction's
    /// per-round demand `K`).
    ///
    /// # Panics
    ///
    /// Panics if `k_need` is zero.
    pub fn with_coverage_floor(mut self, k_need: u32) -> Self {
        assert!(k_need >= 1, "coverage floor must be at least 1");
        self.coverage_floor = Some(k_need);
        self
    }

    /// Runs the FL job: winners train per the outcome's schedule, the
    /// server federated-averages, for `T_g` rounds (early rounds continue
    /// even after the target is hit, so the trace shows the full horizon).
    ///
    /// `federation.shards` must have one shard per *client* of the
    /// instance (indexed by `ClientId`).
    ///
    /// # Panics
    ///
    /// Panics if the federation has fewer shards than the instance has
    /// clients, or the shards disagree on dimension.
    pub fn run(
        &self,
        instance: &Instance,
        outcome: &AuctionOutcome,
        federation: &Federation,
        seed: u64,
    ) -> TrainingReport {
        assert!(
            federation.shards.len() >= instance.num_clients(),
            "federation has {} shards for {} clients",
            federation.shards.len(),
            instance.num_clients()
        );
        let _job = span!("fl_job", tg = outcome.horizon(), seed = seed);
        let dim = federation.shards[0].features[0].len();
        let mut rng = StdRng::seed_from_u64(seed);

        // Roster: round → [(client, θ, winner idx)].
        let mut roster: HashMap<u32, Vec<(ClientId, f64)>> = HashMap::new();
        for w in outcome.solution().winners() {
            let theta = instance.bid(w.bid_ref).accuracy();
            for &t in &w.schedule {
                roster
                    .entry(t.0)
                    .or_default()
                    .push((w.bid_ref.client, theta));
            }
        }
        let winner_shards: Vec<&crate::data::ClientData> = outcome
            .solution()
            .winners()
            .iter()
            .map(|w| &federation.shards[w.bid_ref.client.index()])
            .collect();

        let k_need = self
            .coverage_floor
            .unwrap_or_else(|| instance.config().clients_per_round());
        let standbys: Option<StandbyPool> = self
            .recovery
            .uses_standbys()
            .then(|| outcome.standby_pool(instance));
        // Remaining activation budget per standby client (battery c_ij).
        let mut standby_budget: HashMap<ClientId, u32> = HashMap::new();
        let mut faults = self.faults.as_ref().map(FaultRun::new);

        let mut model = LinearModel::zeros(dim);
        let initial_grad_norm = global_grad_norm(&model, &winner_shards);
        let target = self.global_accuracy * initial_grad_norm;
        let mut rounds: Vec<RoundRecord> = Vec::new();
        let mut reached_at = None;
        let mut total_wall_clock = 0.0;

        for t in 1..=outcome.horizon() {
            let _round = span!("fl_round", t = t);
            let scheduled = roster.get(&t).cloned().unwrap_or_default();
            let mut st = RoundState::new(dim);
            let mut dropped = Vec::new();
            let mut retried = Vec::new();
            let mut substitutes = Vec::new();
            let mut repair_spend = 0.0;

            for (client, theta) in scheduled {
                if let Some(f) = &mut faults {
                    if f.drops(client, &mut rng) {
                        dropped.push(client);
                        continue;
                    }
                }
                self.try_train(
                    &mut st, instance, federation, &model, client, theta, 0.0, &mut rng,
                );
            }

            // Repair pass: the confirmed headcount is below the floor.
            if (st.participants.len() as u32) < k_need {
                if let Some((max_attempts, backoff)) = self.recovery.retry_params() {
                    let mut still_down = Vec::new();
                    for client in dropped.drain(..) {
                        if st.participants.len() as u32 >= k_need {
                            still_down.push(client);
                            continue;
                        }
                        let mut recovered = false;
                        for attempt in 1..=max_attempts {
                            let down = match &mut faults {
                                Some(f) => f.drops(client, &mut rng),
                                None => false,
                            };
                            if down {
                                continue;
                            }
                            let theta = theta_of(instance, outcome, client);
                            let delay = backoff * f64::from(attempt);
                            if self.try_train(
                                &mut st, instance, federation, &model, client, theta, delay,
                                &mut rng,
                            ) {
                                retried.push(client);
                            }
                            recovered = true;
                            break;
                        }
                        if !recovered {
                            still_down.push(client);
                        }
                    }
                    dropped = still_down;
                }
                if let Some(pool) = &standbys {
                    for entry in pool.for_round(Round(t)) {
                        if st.participants.len() as u32 >= k_need {
                            break;
                        }
                        let client = entry.bid_ref.client;
                        let budget = standby_budget.entry(client).or_insert(entry.budget);
                        if *budget == 0 {
                            continue;
                        }
                        if let Some(f) = &mut faults {
                            if f.drops(client, &mut rng) {
                                continue; // unreachable standby: no service, no pay
                            }
                        }
                        *budget -= 1; // the standby trains either way
                        if self.try_train(
                            &mut st,
                            instance,
                            federation,
                            &model,
                            client,
                            entry.accuracy,
                            0.0,
                            &mut rng,
                        ) {
                            substitutes.push(client);
                            repair_spend += entry.payment_per_round;
                        }
                    }
                }
            }
            let coverage_gap = k_need.saturating_sub(st.participants.len() as u32);

            if st.weight_total > 0.0 {
                for v in st.aggregate.iter_mut() {
                    *v /= st.weight_total;
                }
                model = LinearModel::from_weights(std::mem::take(&mut st.aggregate));
            }
            let grad_norm = global_grad_norm(&model, &winner_shards);
            let loss = global_loss(&model, &winner_shards);
            if reached_at.is_none() && grad_norm <= target {
                reached_at = Some(t);
            }
            total_wall_clock += st.wall_clock;
            counter!("sim.dropped", dropped.len());
            counter!("sim.retried", retried.len());
            counter!("sim.substituted", substitutes.len());
            counter!("sim.late", st.late.len());
            sample!("sim.round_wall_clock", st.wall_clock);
            if repair_spend > 0.0 {
                sample!("sim.repair_spend", repair_spend);
                debug!(
                    "round {t}: {} substitute(s) activated for {repair_spend:.3} repair spend",
                    substitutes.len()
                );
            }
            if coverage_gap > 0 {
                counter!("sim.coverage_gaps", coverage_gap);
            }
            rounds.push(RoundRecord {
                round: Round(t),
                participants: st.participants,
                dropped,
                late: st.late,
                local_iterations: st.local_iterations,
                substitutes,
                retried,
                repair_spend,
                coverage_gap,
                wall_clock: st.wall_clock,
                grad_norm,
                loss,
            });
        }

        let final_accuracy = global_accuracy(&model, &winner_shards);
        let repair_spend: f64 = rounds.iter().map(|r| r.repair_spend).sum();
        let n = rounds.len() as f64;
        let coverage_ratio = if rounds.is_empty() {
            1.0
        } else {
            rounds
                .iter()
                .map(|r| f64::from((r.participants.len() as u32).min(k_need)) / f64::from(k_need))
                .sum::<f64>()
                / n
        };
        let sla_met_fraction = if rounds.is_empty() {
            1.0
        } else {
            rounds.iter().filter(|r| r.coverage_gap == 0).count() as f64 / n
        };
        TrainingReport {
            rounds,
            initial_grad_norm,
            reached_at,
            final_model: model,
            total_wall_clock,
            final_accuracy,
            repair_spend,
            coverage_ratio,
            sla_met_fraction,
        }
    }

    /// Simulates one confirmed participation: samples the straggler jitter,
    /// enforces the `t_max` training deadline, trains, and folds the local
    /// model into the round's aggregate. Returns whether the update arrived
    /// on time (`false` records the client as late). `extra_delay` is
    /// server-side waiting (retry backoff) that extends the wall clock but
    /// does not count against the client's own deadline.
    #[allow(clippy::too_many_arguments)]
    fn try_train(
        &self,
        st: &mut RoundState,
        instance: &Instance,
        federation: &Federation,
        model: &LinearModel,
        client: ClientId,
        theta: f64,
        extra_delay: f64,
        rng: &mut StdRng,
    ) -> bool {
        let t_max = instance.config().round_time_limit();
        let profile = &instance.clients()[client.index()];
        let nominal = instance.config().local_model().local_iterations(theta)
            * profile.compute_time()
            + profile.comm_time();
        let actual = match &self.stragglers {
            Some(sm) => nominal * sm.sample_factor(rng),
            None => nominal,
        };
        if actual > t_max + 1e-9 {
            // The synchronous server cuts aggregation off at the deadline;
            // the straggler's work is wasted.
            st.late.push(client);
            st.wall_clock = st.wall_clock.max(t_max + extra_delay);
            return false;
        }
        let shard = &federation.shards[client.index()];
        let result = self.trainer.train(model, shard, theta);
        st.wall_clock = st.wall_clock.max(actual + extra_delay);
        let w = shard.len() as f64;
        for (acc, v) in st.aggregate.iter_mut().zip(result.model.weights()) {
            *acc += w * v;
        }
        st.weight_total += w;
        st.participants.push(client);
        st.local_iterations.push(result.iterations);
        true
    }
}

/// Mutable accumulator for one global iteration.
struct RoundState {
    participants: Vec<ClientId>,
    late: Vec<ClientId>,
    local_iterations: Vec<u32>,
    aggregate: Vec<f64>,
    weight_total: f64,
    wall_clock: f64,
}

impl RoundState {
    fn new(dim: usize) -> Self {
        RoundState {
            participants: Vec::new(),
            late: Vec::new(),
            local_iterations: Vec::new(),
            aggregate: vec![0.0; dim],
            weight_total: 0.0,
            wall_clock: 0.0,
        }
    }
}

/// The committed local accuracy of a winning client (retries only ever
/// re-contact winners, so the lookup cannot miss).
fn theta_of(instance: &Instance, outcome: &AuctionOutcome, client: ClientId) -> f64 {
    let w = outcome
        .solution()
        .winners()
        .iter()
        .find(|w| w.bid_ref.client == client)
        .expect("retried client must be a winner");
    instance.bid(w.bid_ref).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataSkew, DatasetSpec};
    use fl_auction::{run_auction, AuctionConfig, Bid, ClientProfile, Window};

    fn setup() -> (Instance, AuctionOutcome, Federation) {
        let cfg = AuctionConfig::builder()
            .max_rounds(8)
            .clients_per_round(2)
            .round_time_limit(100.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        for i in 0..6 {
            let c = inst.add_client(ClientProfile::new(5.0 + i as f64 * 0.5, 10.0).unwrap());
            let theta = 0.5 + 0.05 * i as f64;
            inst.add_bid(
                c,
                Bid::new(10.0 + i as f64, theta, Window::new(Round(1), Round(8)), 8).unwrap(),
            )
            .unwrap();
        }
        let outcome = run_auction(&inst).unwrap();
        let fed = Federation::generate(
            &DatasetSpec {
                dim: 6,
                samples_per_client: 60,
                label_noise: 0.02,
                skew: DataSkew::Iid,
            },
            inst.num_clients(),
            17,
        );
        (inst, outcome, fed)
    }

    #[test]
    fn every_round_has_the_scheduled_roster() {
        let (inst, outcome, fed) = setup();
        let report = FlJob::new(0.2).run(&inst, &outcome, &fed, 0);
        assert_eq!(report.rounds.len() as u32, outcome.horizon());
        for r in &report.rounds {
            assert!(
                r.participants.len() as u32 >= inst.config().clients_per_round(),
                "round {} has only {} participants",
                r.round,
                r.participants.len()
            );
        }
    }

    #[test]
    fn training_converges_on_iid_data() {
        let (inst, outcome, fed) = setup();
        let report = FlJob::new(0.2).run(&inst, &outcome, &fed, 0);
        assert!(
            report.reached_at.is_some(),
            "global accuracy target never reached; final ‖∇J‖ = {}",
            report.rounds.last().unwrap().grad_norm
        );
        assert!(report.final_accuracy > 0.7);
        let first = report.rounds.first().unwrap().grad_norm;
        let last = report.rounds.last().unwrap().grad_norm;
        assert!(last < first, "gradient norm must shrink: {first} → {last}");
    }

    #[test]
    fn wall_clock_respects_the_auction_time_limit() {
        let (inst, outcome, fed) = setup();
        let report = FlJob::new(0.2).run(&inst, &outcome, &fed, 0);
        for r in &report.rounds {
            assert!(
                r.wall_clock <= inst.config().round_time_limit() + 1e-9,
                "round {} took {} > t_max",
                r.round,
                r.wall_clock
            );
        }
        let expected_total: f64 = report.rounds.iter().map(|r| r.wall_clock).sum();
        assert!((report.total_wall_clock - expected_total).abs() < 1e-9);
    }

    #[test]
    fn dropout_reduces_participation() {
        let (inst, outcome, fed) = setup();
        let heavy = FlJob::new(0.2).with_dropout(DropoutModel::new(0.6));
        let report = heavy.run(&inst, &outcome, &fed, 3);
        let dropped: usize = report.rounds.iter().map(|r| r.dropped.len()).sum();
        assert!(dropped > 0, "a 60% dropout rate must drop someone");
        for r in &report.rounds {
            let scheduled = r.participants.len() + r.dropped.len();
            assert!(scheduled as u32 >= inst.config().clients_per_round());
        }
    }

    #[test]
    fn stragglers_miss_deadlines_and_are_discarded() {
        let (inst, outcome, fed) = setup();
        // Nominal round times in `setup` sit near t_max/2; a 10× slowdown
        // on every participation pushes everyone past the deadline.
        let all_slow = FlJob::new(0.2).with_stragglers(StragglerModel::new(1.0, (10.0, 10.0)));
        let report = all_slow.run(&inst, &outcome, &fed, 4);
        let late: usize = report.rounds.iter().map(|r| r.late.len()).sum();
        let on_time: usize = report.rounds.iter().map(|r| r.participants.len()).sum();
        assert!(late > 0, "universal 10x slowdown must strand someone");
        assert_eq!(on_time, 0, "nobody makes a 10x-slowed deadline here");
        for r in &report.rounds {
            assert!(
                r.wall_clock <= inst.config().round_time_limit() + 1e-9,
                "the server never waits past t_max"
            );
        }
        // Mild jitter strands only some.
        let mild = FlJob::new(0.2).with_stragglers(StragglerModel::mild());
        let report = mild.run(&inst, &outcome, &fed, 4);
        let on_time: usize = report.rounds.iter().map(|r| r.participants.len()).sum();
        assert!(on_time > 0, "mild jitter must leave most updates on time");
    }

    #[test]
    fn dropout_trace_is_deterministic_per_seed() {
        let (inst, outcome, fed) = setup();
        let job = FlJob::new(0.2).with_dropout(DropoutModel::new(0.3));
        let a = job.run(&inst, &outcome, &fed, 5);
        let b = job.run(&inst, &outcome, &fed, 5);
        assert_eq!(a, b);
    }

    /// Empirical check of Eq. (1)'s direction: with every participant at
    /// a coarser local accuracy (larger θ), the federation needs MORE
    /// global rounds to reach the same relative global accuracy — the
    /// `T_g ∝ 1/(1−θ_max)` coupling the whole auction is built on.
    #[test]
    fn coarser_local_accuracy_needs_more_global_rounds() {
        let build = |theta: f64| -> (Instance, AuctionOutcome) {
            let cfg = AuctionConfig::builder()
                .max_rounds(40)
                .clients_per_round(2)
                .round_time_limit(1000.0)
                .build()
                .unwrap();
            let mut inst = Instance::new(cfg);
            for i in 0..3 {
                let c = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
                inst.add_bid(
                    c,
                    Bid::new(10.0 + i as f64, theta, Window::new(Round(1), Round(40)), 40).unwrap(),
                )
                .unwrap();
            }
            let outcome = run_auction(&inst).unwrap();
            (inst, outcome)
        };
        let fed = Federation::generate(
            &DatasetSpec {
                dim: 6,
                samples_per_client: 80,
                label_noise: 0.02,
                skew: DataSkew::Iid,
            },
            3,
            31,
        );
        let epsilon = 0.05;
        let (fine_inst, fine_out) = build(0.3);
        let (coarse_inst, coarse_out) = build(0.9);
        let fine = FlJob::new(epsilon).run(&fine_inst, &fine_out, &fed, 0);
        let coarse = FlJob::new(epsilon).run(&coarse_inst, &coarse_out, &fed, 0);
        let fine_rounds = fine.reached_at.expect("θ = 0.3 must converge in 40 rounds");
        match coarse.reached_at {
            None => {} // even stronger: coarse never reaches the target
            Some(coarse_rounds) => assert!(
                coarse_rounds > fine_rounds,
                "θ = 0.9 converged in {coarse_rounds} rounds vs {fine_rounds} for θ = 0.3"
            ),
        }
    }

    #[test]
    #[should_panic(expected = "shards")]
    fn missing_shards_panic() {
        let (inst, outcome, _) = setup();
        let small = Federation::generate(&DatasetSpec::default(), 1, 0);
        let _ = FlJob::new(0.5).run(&inst, &outcome, &small, 0);
    }

    #[test]
    #[should_panic(expected = "ε must lie")]
    fn invalid_epsilon_panics() {
        let _ = FlJob::new(0.0);
    }
}

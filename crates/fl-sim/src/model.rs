//! Logistic-regression model, loss and gradients.
//!
//! The simulator trains an `ℓ2`-regularised logistic regression — convex
//! and smooth, so the paper's convergence framework (relative
//! gradient-norm accuracies, Eq. 1–2) applies directly.

use crate::data::ClientData;

/// Strength of the `ℓ2` regulariser used throughout the simulator; keeps
/// the loss strongly convex so gradient-norm accuracies behave.
pub const L2_REG: f64 = 1e-2;

/// A linear model over `dim + 1` coefficients (bias included).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
}

impl LinearModel {
    /// The zero model of the given total dimension (features + bias).
    ///
    /// # Panics
    ///
    /// Panics if `dim_with_bias` is zero.
    pub fn zeros(dim_with_bias: usize) -> Self {
        assert!(dim_with_bias > 0, "model needs at least one coefficient");
        LinearModel {
            weights: vec![0.0; dim_with_bias],
        }
    }

    /// Wraps explicit weights.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "model needs at least one coefficient");
        LinearModel { weights }
    }

    /// The coefficient vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mutable access for optimisers.
    pub fn weights_mut(&mut self) -> &mut [f64] {
        &mut self.weights
    }

    /// The raw score `w·x`.
    pub fn score(&self, x: &[f64]) -> f64 {
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum()
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.score(x))
    }

    /// Fraction of samples classified correctly at threshold 0.5.
    pub fn accuracy(&self, data: &ClientData) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| (self.predict_proba(x) > 0.5) == (y == 1.0))
            .count();
        correct as f64 / data.len() as f64
    }
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Regularised mean logistic loss of `model` on `data`.
pub fn loss(model: &LinearModel, data: &ClientData) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let n = data.len() as f64;
    let mut total = 0.0;
    for (x, &y) in data.features.iter().zip(&data.labels) {
        let z = model.score(x);
        // log(1 + e^z) − y·z, computed stably.
        let log1p_ez = if z > 0.0 {
            z + (-z).exp().ln_1p()
        } else {
            z.exp().ln_1p()
        };
        total += log1p_ez - y * z;
    }
    let reg: f64 = model.weights().iter().map(|w| w * w).sum::<f64>() * (L2_REG / 2.0);
    total / n + reg
}

/// Gradient of [`loss`] with respect to the weights.
pub fn gradient(model: &LinearModel, data: &ClientData) -> Vec<f64> {
    let d = model.weights().len();
    let mut g = vec![0.0; d];
    if data.is_empty() {
        return g;
    }
    let n = data.len() as f64;
    for (x, &y) in data.features.iter().zip(&data.labels) {
        let err = sigmoid(model.score(x)) - y;
        for (gk, xk) in g.iter_mut().zip(x) {
            *gk += err * xk;
        }
    }
    for (gk, wk) in g.iter_mut().zip(model.weights()) {
        *gk = *gk / n + L2_REG * wk;
    }
    g
}

/// Euclidean norm of a vector.
pub fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataSkew, DatasetSpec, Federation};

    fn shard() -> ClientData {
        Federation::generate(
            &DatasetSpec {
                dim: 5,
                samples_per_client: 120,
                label_noise: 0.0,
                skew: DataSkew::Iid,
            },
            1,
            19,
        )
        .shards
        .remove(0)
    }

    #[test]
    fn sigmoid_is_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(800.0).is_finite());
        assert!(sigmoid(-800.0).is_finite());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data = shard();
        let model = LinearModel::from_weights(vec![0.3, -0.2, 0.5, 0.1, -0.4, 0.2]);
        let g = gradient(&model, &data);
        let eps = 1e-6;
        for (k, &gk) in g.iter().enumerate() {
            let mut plus = model.clone();
            plus.weights_mut()[k] += eps;
            let mut minus = model.clone();
            minus.weights_mut()[k] -= eps;
            let numeric = (loss(&plus, &data) - loss(&minus, &data)) / (2.0 * eps);
            assert!(
                (numeric - gk).abs() < 1e-5,
                "coordinate {k}: analytic {gk} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gradient_descent_reduces_loss_and_gradient() {
        let data = shard();
        let mut model = LinearModel::zeros(6);
        let l0 = loss(&model, &data);
        let g0 = norm(&gradient(&model, &data));
        for _ in 0..200 {
            let g = gradient(&model, &data);
            for (w, gk) in model.weights_mut().iter_mut().zip(&g) {
                *w -= 0.5 * gk;
            }
        }
        assert!(loss(&model, &data) < l0);
        assert!(norm(&gradient(&model, &data)) < 0.1 * g0);
        assert!(model.accuracy(&data) > 0.8);
    }

    #[test]
    fn empty_data_degenerates_gracefully() {
        let empty = ClientData {
            features: vec![],
            labels: vec![],
        };
        let model = LinearModel::zeros(3);
        assert_eq!(loss(&model, &empty), 0.0);
        assert_eq!(gradient(&model, &empty), vec![0.0; 3]);
        assert_eq!(model.accuracy(&empty), 1.0);
    }

    #[test]
    fn accuracy_of_truth_model_is_high_without_noise() {
        let fed = Federation::generate(
            &DatasetSpec {
                dim: 5,
                samples_per_client: 200,
                label_noise: 0.0,
                skew: DataSkew::Iid,
            },
            1,
            19,
        );
        let model = LinearModel::from_weights(fed.truth.clone());
        assert!(model.accuracy(&fed.shards[0]) > 0.75);
    }
}

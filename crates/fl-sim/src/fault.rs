//! Client-fault processes — who is unreachable, and when.
//!
//! The seed simulator modelled unavailability as independent Bernoulli
//! dropout per participation. Real mobile-client churn is neither
//! homogeneous nor memoryless: connectivity outages come in bursts (a
//! client behind a bad link stays bad for a while) and failure rates differ
//! wildly across devices. This module puts all three behaviours behind one
//! seam:
//!
//! * [`FaultModel::Bernoulli`] — the original i.i.d. process;
//! * [`FaultModel::Markov`] — Gilbert–Elliott two-state churn: each client
//!   carries a good/bad channel state, flipping good→bad with `p_gb` and
//!   bad→good with `p_bg` per contact, so dropouts are *correlated* in
//!   time (mean outage length `1/p_bg` contacts);
//! * [`FaultModel::PerClient`] — heterogeneous per-client Bernoulli rates
//!   with a default for unlisted clients.
//!
//! A [`FaultModel`] is pure configuration; the mutable per-run chain state
//! lives in a [`FaultRun`], so one job configuration can drive many
//! deterministic replays.

use std::collections::HashMap;

use fl_auction::ClientId;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::dropout::DropoutModel;

/// The stochastic process governing client unavailability.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultModel {
    /// Independent per-participation dropout with one shared probability.
    Bernoulli(DropoutModel),
    /// Gilbert–Elliott two-state Markov churn. Every client starts in the
    /// good state; each contact attempt advances its chain one step.
    Markov {
        /// Per-contact probability of a good client turning bad.
        p_gb: f64,
        /// Per-contact probability of a bad client recovering.
        p_bg: f64,
    },
    /// Heterogeneous per-client Bernoulli rates.
    PerClient {
        /// Dropout probability per listed client.
        rates: HashMap<ClientId, f64>,
        /// Probability applied to clients absent from `rates`.
        default: f64,
    },
}

impl FaultModel {
    /// Homogeneous Bernoulli dropout (the seed behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn bernoulli(probability: f64) -> Self {
        FaultModel::Bernoulli(DropoutModel::new(probability))
    }

    /// Gilbert–Elliott churn with the given transition probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn markov(p_gb: f64, p_bg: f64) -> Self {
        for (name, p) in [("p_gb", p_gb), ("p_bg", p_bg)] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must lie in [0, 1], got {p}"
            );
        }
        FaultModel::Markov { p_gb, p_bg }
    }

    /// Per-client rates with a default for unlisted clients.
    ///
    /// # Panics
    ///
    /// Panics if any rate (or the default) is outside `[0, 1]`.
    pub fn per_client(rates: HashMap<ClientId, f64>, default: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&default),
            "default dropout probability must lie in [0, 1], got {default}"
        );
        for (c, &p) in &rates {
            assert!(
                (0.0..=1.0).contains(&p),
                "dropout probability of {c:?} must lie in [0, 1], got {p}"
            );
        }
        FaultModel::PerClient { rates, default }
    }

    /// The long-run per-contact unavailability the process converges to:
    /// the Bernoulli rate, the Markov chain's stationary bad-state mass
    /// `p_gb / (p_gb + p_bg)`, or the per-client default.
    pub fn steady_state_unavailability(&self) -> f64 {
        match self {
            FaultModel::Bernoulli(m) => m.probability(),
            FaultModel::Markov { p_gb, p_bg } => {
                if p_gb + p_bg == 0.0 {
                    0.0 // absorbing good state
                } else {
                    p_gb / (p_gb + p_bg)
                }
            }
            FaultModel::PerClient { default, .. } => *default,
        }
    }
}

/// Mutable fault state for one training run.
///
/// Memoryless models keep no state; the Markov model tracks each client's
/// channel. Every call to [`FaultRun::drops`] models one contact attempt
/// and advances the contacted client's chain one step, so retries within a
/// round see the burst structure too (a client mid-outage stays dropped
/// with probability `1 − p_bg` per attempt).
#[derive(Debug, Clone)]
pub struct FaultRun<'a> {
    model: &'a FaultModel,
    /// Markov channel state per client; `true` = bad. Absent = good.
    bad: HashMap<ClientId, bool>,
}

impl<'a> FaultRun<'a> {
    /// Fresh state: every client starts reachable.
    pub fn new(model: &'a FaultModel) -> Self {
        FaultRun {
            model,
            bad: HashMap::new(),
        }
    }

    /// Whether one contact attempt with `client` fails.
    pub fn drops(&mut self, client: ClientId, rng: &mut StdRng) -> bool {
        match self.model {
            FaultModel::Bernoulli(m) => m.drops(rng),
            FaultModel::Markov { p_gb, p_bg } => {
                let state = self.bad.entry(client).or_insert(false);
                let flip = if *state { *p_bg } else { *p_gb };
                if flip > 0.0 && rng.random_range(0.0..1.0) < flip {
                    *state = !*state;
                }
                *state
            }
            FaultModel::PerClient { rates, default } => {
                let p = rates.get(&client).copied().unwrap_or(*default);
                p > 0.0 && rng.random_range(0.0..1.0) < p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cid(i: u32) -> ClientId {
        ClientId(i)
    }

    #[test]
    fn bernoulli_matches_the_dropout_model_rate() {
        let model = FaultModel::bernoulli(0.3);
        let mut run = FaultRun::new(&model);
        let mut rng = StdRng::seed_from_u64(3);
        let drops = (0..20_000).filter(|_| run.drops(cid(0), &mut rng)).count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "empirical rate {rate}");
        assert_eq!(model.steady_state_unavailability(), 0.3);
    }

    #[test]
    fn markov_converges_to_the_stationary_rate() {
        let model = FaultModel::markov(0.1, 0.4);
        let mut run = FaultRun::new(&model);
        let mut rng = StdRng::seed_from_u64(5);
        let drops = (0..40_000).filter(|_| run.drops(cid(0), &mut rng)).count();
        let rate = drops as f64 / 40_000.0;
        let stationary = model.steady_state_unavailability();
        assert!((stationary - 0.2).abs() < 1e-12);
        assert!((rate - stationary).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn markov_outages_are_bursty() {
        // P(drop | dropped last contact) = 1 − p_bg, which far exceeds the
        // stationary rate — the signature of correlated churn that i.i.d.
        // Bernoulli cannot produce.
        let model = FaultModel::markov(0.05, 0.2);
        let mut run = FaultRun::new(&model);
        let mut rng = StdRng::seed_from_u64(7);
        let trace: Vec<bool> = (0..60_000).map(|_| run.drops(cid(0), &mut rng)).collect();
        let mut after_drop = 0usize;
        let mut drop_after_drop = 0usize;
        for pair in trace.windows(2) {
            if pair[0] {
                after_drop += 1;
                if pair[1] {
                    drop_after_drop += 1;
                }
            }
        }
        let conditional = drop_after_drop as f64 / after_drop as f64;
        assert!(
            (conditional - 0.8).abs() < 0.03,
            "P(drop|drop) = {conditional}, expected ≈ 1 − p_bg = 0.8"
        );
        let stationary = model.steady_state_unavailability();
        assert!(conditional > stationary + 0.4, "burstiness must be visible");
    }

    #[test]
    fn markov_chains_are_independent_across_clients() {
        let model = FaultModel::markov(0.0, 1.0); // good state is absorbing
        let mut run = FaultRun::new(&model);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..50 {
            assert!(!run.drops(cid(i), &mut rng));
        }
    }

    #[test]
    fn per_client_rates_apply_with_default_fallback() {
        let mut rates = HashMap::new();
        rates.insert(cid(1), 0.0);
        rates.insert(cid(2), 1.0);
        let model = FaultModel::per_client(rates, 0.5);
        let mut run = FaultRun::new(&model);
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..500).all(|_| !run.drops(cid(1), &mut rng)));
        assert!((0..500).all(|_| run.drops(cid(2), &mut rng)));
        let drops = (0..20_000).filter(|_| run.drops(cid(3), &mut rng)).count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.5).abs() < 0.02, "default rate applies: {rate}");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        for model in [
            FaultModel::bernoulli(0.4),
            FaultModel::markov(0.2, 0.3),
            FaultModel::per_client(HashMap::new(), 0.4),
        ] {
            let sample = |seed: u64| -> Vec<bool> {
                let mut run = FaultRun::new(&model);
                let mut rng = StdRng::seed_from_u64(seed);
                (0..200).map(|i| run.drops(cid(i % 7), &mut rng)).collect()
            };
            assert_eq!(sample(13), sample(13));
            assert_ne!(sample(13), sample(14), "different seeds must diverge");
        }
    }

    #[test]
    #[should_panic(expected = "p_gb")]
    fn invalid_markov_probability_panics() {
        let _ = FaultModel::markov(1.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "default")]
    fn invalid_default_rate_panics() {
        let _ = FaultModel::per_client(HashMap::new(), -0.1);
    }
}

//! Local training to a target local accuracy `θ`.
//!
//! The paper defines local accuracy by *relative gradient reduction*
//! (footnote 1): a client has reached accuracy `θ` for this round when
//! `‖∇F(w)‖ ≤ θ·‖∇F(w₀)‖`, with `w₀` the round's incoming global model.
//! Smaller `θ` costs more local iterations — the `T_l(θ) = η·log(1/θ)`
//! relation (Eq. 2) that the auction's time constraint (6d) is built on.

use crate::data::ClientData;
use crate::model::{norm, LinearModel};
use crate::objective::{LogisticObjective, Objective};

/// Outcome of one client's local round.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalResult {
    /// The locally improved model.
    pub model: LinearModel,
    /// Gradient-descent iterations actually used.
    pub iterations: u32,
    /// Whether the target relative accuracy was met (false only when the
    /// iteration cap was hit first).
    pub converged: bool,
}

/// Gradient-descent local solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalTrainer {
    /// Step size.
    pub learning_rate: f64,
    /// Hard iteration cap per round (guards divergent configurations).
    pub max_iterations: u32,
}

impl Default for LocalTrainer {
    fn default() -> Self {
        LocalTrainer {
            learning_rate: 0.5,
            max_iterations: 10_000,
        }
    }
}

impl LocalTrainer {
    /// Runs gradient descent from `start` on `data` until
    /// `‖∇F(w)‖ ≤ θ·‖∇F(start)‖` or the iteration cap, under the default
    /// logistic objective.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is outside `(0, 1]`.
    pub fn train(&self, start: &LinearModel, data: &ClientData, theta: f64) -> LocalResult {
        self.train_objective(&LogisticObjective, start, data, theta)
    }

    /// [`LocalTrainer::train`] under an arbitrary [`Objective`].
    ///
    /// # Panics
    ///
    /// Panics if `theta` is outside `(0, 1]`.
    pub fn train_objective(
        &self,
        objective: &impl Objective,
        start: &LinearModel,
        data: &ClientData,
        theta: f64,
    ) -> LocalResult {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "θ must lie in (0, 1], got {theta}"
        );
        let mut model = start.clone();
        let g0 = norm(&objective.gradient(&model, data));
        let target = theta * g0;
        if g0 == 0.0 {
            return LocalResult {
                model,
                iterations: 0,
                converged: true,
            };
        }
        let mut iterations = 0;
        loop {
            let g = objective.gradient(&model, data);
            if norm(&g) <= target {
                return LocalResult {
                    model,
                    iterations,
                    converged: true,
                };
            }
            if iterations >= self.max_iterations {
                return LocalResult {
                    model,
                    iterations,
                    converged: false,
                };
            }
            for (w, gk) in model.weights_mut().iter_mut().zip(&g) {
                *w -= self.learning_rate * gk;
            }
            iterations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataSkew, DatasetSpec, Federation};

    fn shard() -> ClientData {
        Federation::generate(
            &DatasetSpec {
                dim: 6,
                samples_per_client: 100,
                label_noise: 0.02,
                skew: DataSkew::Iid,
            },
            1,
            13,
        )
        .shards
        .remove(0)
    }

    #[test]
    fn reaches_the_requested_relative_accuracy() {
        let data = shard();
        let trainer = LocalTrainer::default();
        let start = LinearModel::zeros(7);
        let g0 = norm(&crate::model::gradient(&start, &data));
        for theta in [0.8, 0.5, 0.3] {
            let r = trainer.train(&start, &data, theta);
            assert!(r.converged);
            let g = norm(&crate::model::gradient(&r.model, &data));
            assert!(
                g <= theta * g0 + 1e-12,
                "θ = {theta}: ‖∇‖ = {g} > target {}",
                theta * g0
            );
        }
    }

    #[test]
    fn smaller_theta_needs_more_iterations() {
        let data = shard();
        let trainer = LocalTrainer::default();
        let start = LinearModel::zeros(7);
        let coarse = trainer.train(&start, &data, 0.8).iterations;
        let fine = trainer.train(&start, &data, 0.3).iterations;
        let finest = trainer.train(&start, &data, 0.1).iterations;
        assert!(
            coarse <= fine && fine <= finest,
            "{coarse} ≤ {fine} ≤ {finest}"
        );
        assert!(finest > coarse, "iteration counts must actually grow");
    }

    #[test]
    fn iteration_counts_track_log_inverse_theta() {
        // Eq. (2): T_l(θ) ≈ η·log(1/θ) for strongly-convex losses. Check
        // the ratio between two θ values is within a generous band.
        let data = shard();
        let trainer = LocalTrainer::default();
        let start = LinearModel::zeros(7);
        let t_half = trainer.train(&start, &data, 0.5).iterations as f64;
        let t_quarter = trainer.train(&start, &data, 0.25).iterations as f64;
        // log(1/0.25)/log(1/0.5) = 2; allow [1.2, 3.5].
        let ratio = t_quarter / t_half.max(1.0);
        assert!(
            (1.2..=3.5).contains(&ratio),
            "iteration ratio {ratio} strays from the log(1/θ) law"
        );
    }

    #[test]
    fn theta_one_is_free() {
        let data = shard();
        let r = LocalTrainer::default().train(&LinearModel::zeros(7), &data, 1.0);
        assert_eq!(r.iterations, 0);
        assert!(r.converged);
    }

    #[test]
    fn iteration_cap_reports_non_convergence() {
        let data = shard();
        let trainer = LocalTrainer {
            learning_rate: 0.5,
            max_iterations: 1,
        };
        let r = trainer.train(&LinearModel::zeros(7), &data, 0.01);
        assert!(!r.converged);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn ridge_objective_trains_to_relative_accuracy() {
        use crate::objective::{Objective, RidgeObjective};
        let data = shard();
        let obj = RidgeObjective::default();
        let trainer = LocalTrainer {
            learning_rate: 0.1,
            max_iterations: 50_000,
        };
        let start = LinearModel::zeros(7);
        let g0 = crate::model::norm(&obj.gradient(&start, &data));
        let r = trainer.train_objective(&obj, &start, &data, 0.4);
        assert!(r.converged);
        let g = crate::model::norm(&obj.gradient(&r.model, &data));
        assert!(
            g <= 0.4 * g0 + 1e-12,
            "ridge relative accuracy missed: {g} vs {}",
            0.4 * g0
        );
    }

    #[test]
    #[should_panic(expected = "θ must lie")]
    fn invalid_theta_panics() {
        let data = shard();
        let _ = LocalTrainer::default().train(&LinearModel::zeros(7), &data, 0.0);
    }
}

//! Device energy accounting.
//!
//! The paper grounds the bid field `c_ij` physically: a client "can only
//! participate `c_ij` number of global iterations, which is limited by its
//! battery level, and calculated based on `θ_ij`" (§IV-B). This module
//! makes that derivation explicit: a per-round energy draw from the
//! client's compute/communication profile and committed accuracy, and a
//! battery that converts capacity into a participation budget.

use fl_auction::{ClientProfile, LocalIterationModel};

/// Converts time into energy: how much energy one unit of compute time and
/// one unit of radio time costs the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per unit of local computation time.
    pub compute_power: f64,
    /// Energy per unit of communication time.
    pub comm_power: f64,
}

impl EnergyModel {
    /// A smartphone-flavoured default: the radio draws about twice the
    /// power of sustained computation.
    pub fn smartphone() -> Self {
        EnergyModel {
            compute_power: 1.0,
            comm_power: 2.0,
        }
    }

    /// Energy one global iteration costs a client that trains to local
    /// accuracy `theta`: `T_l(θ)·t^cmp·P_cmp + t^com·P_com`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `theta` is outside `(0, 1]` (from the
    /// local-iteration model).
    pub fn round_energy(
        &self,
        model: LocalIterationModel,
        profile: &ClientProfile,
        theta: f64,
    ) -> f64 {
        model.local_iterations(theta) * profile.compute_time() * self.compute_power
            + profile.comm_time() * self.comm_power
    }
}

/// A finite energy budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity: f64,
    remaining: f64,
}

impl Battery {
    /// A full battery of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is negative or not finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "battery capacity must be finite and non-negative, got {capacity}"
        );
        Battery {
            capacity,
            remaining: capacity,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Remaining energy.
    pub fn remaining(&self) -> f64 {
        self.remaining
    }

    /// How many rounds of `round_energy` each the battery can still fund —
    /// the physical derivation of the bid field `c_ij`.
    pub fn affordable_rounds(&self, round_energy: f64) -> u32 {
        if round_energy <= 0.0 {
            return u32::MAX;
        }
        (self.remaining / round_energy).floor() as u32
    }

    /// Draws `amount` energy; returns `false` (and leaves the charge
    /// untouched) when not enough remains.
    pub fn drain(&mut self, amount: f64) -> bool {
        if amount <= self.remaining + 1e-12 {
            self.remaining = (self.remaining - amount).max(0.0);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ClientProfile {
        ClientProfile::new(5.0, 10.0).unwrap()
    }

    #[test]
    fn round_energy_follows_the_time_model() {
        let e = EnergyModel::smartphone();
        let m = LocalIterationModel::paper();
        // θ = 0.5 → T_l = 5 → 5·5·1 + 10·2 = 45.
        assert!((e.round_energy(m, &profile(), 0.5) - 45.0).abs() < 1e-12);
        // θ = 0.8 → T_l = 2 → 2·5 + 20 = 30: coarser accuracy is cheaper.
        assert!(e.round_energy(m, &profile(), 0.8) < e.round_energy(m, &profile(), 0.5));
    }

    #[test]
    fn battery_derives_participation_budget() {
        let e =
            EnergyModel::smartphone().round_energy(LocalIterationModel::paper(), &profile(), 0.5);
        let b = Battery::new(100.0);
        // 100 / 45 → 2 rounds.
        assert_eq!(b.affordable_rounds(e), 2);
        assert_eq!(Battery::new(0.0).affordable_rounds(e), 0);
        assert_eq!(b.affordable_rounds(0.0), u32::MAX);
    }

    #[test]
    fn drain_respects_the_budget() {
        let mut b = Battery::new(10.0);
        assert!(b.drain(4.0));
        assert!(b.drain(6.0));
        assert!(!b.drain(0.1), "empty battery refuses further draws");
        assert_eq!(b.remaining(), 0.0);
        assert_eq!(b.capacity(), 10.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn negative_capacity_panics() {
        let _ = Battery::new(-1.0);
    }
}

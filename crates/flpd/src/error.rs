//! The service error taxonomy: every failure a client can observe is
//! either *retryable* (the daemon is alive but cannot take this request
//! right now — back off and resend) or *fatal* (resending the same
//! request can never succeed). The split is part of the wire contract:
//! error responses carry both the code and its retryability so clients
//! need no hard-coded table.

/// Machine-readable error codes of the flpd protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrCode {
    /// The daemon is at its connection or session capacity — load was
    /// shed. Retryable.
    Overloaded,
    /// All epoch-close slots are busy; the close was not started.
    /// Retryable.
    Backlog,
    /// A deadline elapsed (the peer held a connection idle, or a
    /// response could not be produced in time). Retryable.
    Deadline,
    /// The request is malformed or violates mechanism invariants. Fatal.
    BadRequest,
    /// The named session does not exist. Fatal.
    UnknownSession,
    /// The request is valid but the session is in the wrong state (for
    /// example a bid after close, or a stale sequence number). Fatal.
    Conflict,
    /// The request frame exceeds the daemon's size cap. Fatal.
    TooLarge,
    /// The daemon hit an internal failure (journal I/O, solver error)
    /// and cannot guarantee the request's durability. Fatal.
    Internal,
}

impl ErrCode {
    /// Every code in the taxonomy, in wire-spelling order. The daemon
    /// pre-registers a `service.err.<code>` counter for each so `stats`
    /// always shows the full error surface, and tests can iterate the
    /// taxonomy without hard-coding it.
    pub const ALL: [ErrCode; 8] = [
        ErrCode::Overloaded,
        ErrCode::Backlog,
        ErrCode::Deadline,
        ErrCode::BadRequest,
        ErrCode::UnknownSession,
        ErrCode::Conflict,
        ErrCode::TooLarge,
        ErrCode::Internal,
    ];

    /// Whether a client should back off and retry the identical request.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrCode::Overloaded | ErrCode::Backlog | ErrCode::Deadline
        )
    }

    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::Overloaded => "overloaded",
            ErrCode::Backlog => "backlog",
            ErrCode::Deadline => "deadline",
            ErrCode::BadRequest => "bad_request",
            ErrCode::UnknownSession => "unknown_session",
            ErrCode::Conflict => "conflict",
            ErrCode::TooLarge => "too_large",
            ErrCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling back into a code.
    pub fn parse_str(s: &str) -> Option<ErrCode> {
        Some(match s {
            "overloaded" => ErrCode::Overloaded,
            "backlog" => ErrCode::Backlog,
            "deadline" => ErrCode::Deadline,
            "bad_request" => ErrCode::BadRequest,
            "unknown_session" => ErrCode::UnknownSession,
            "conflict" => ErrCode::Conflict,
            "too_large" => ErrCode::TooLarge,
            "internal" => ErrCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An error as carried on the wire: code plus human detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// The machine-readable code.
    pub code: ErrCode,
    /// Human-readable context.
    pub detail: String,
}

impl ServiceError {
    /// Builds an error with the given code and detail.
    pub fn new(code: ErrCode, detail: impl Into<String>) -> ServiceError {
        ServiceError {
            code,
            detail: detail.into(),
        }
    }

    /// Shorthand for [`ErrCode::retryable`].
    pub fn retryable(&self) -> bool {
        self.code.retryable()
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_splits_retryable_from_fatal() {
        for code in [ErrCode::Overloaded, ErrCode::Backlog, ErrCode::Deadline] {
            assert!(code.retryable(), "{code}");
        }
        for code in [
            ErrCode::BadRequest,
            ErrCode::UnknownSession,
            ErrCode::Conflict,
            ErrCode::TooLarge,
            ErrCode::Internal,
        ] {
            assert!(!code.retryable(), "{code}");
        }
    }

    #[test]
    fn wire_spelling_round_trips() {
        for code in [
            ErrCode::Overloaded,
            ErrCode::Backlog,
            ErrCode::Deadline,
            ErrCode::BadRequest,
            ErrCode::UnknownSession,
            ErrCode::Conflict,
            ErrCode::TooLarge,
            ErrCode::Internal,
        ] {
            assert_eq!(ErrCode::parse_str(code.as_str()), Some(code));
        }
        assert_eq!(ErrCode::parse_str("nope"), None);
    }
}

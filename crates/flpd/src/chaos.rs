//! The chaos matrix: certify crash consistency under injected faults.
//!
//! Each *cell* of the matrix is `(fault kind, seed)`. A cell builds a
//! deterministic script of sessions (profiles, bids, closes), computes
//! every epoch's reference outcome locally with `fl_auction`, then
//! drives the script against a real daemon running under the cell's
//! fault plan. If the daemon dies at its crash point the harness
//! restarts it from the journal — exactly what a supervisor would do —
//! and finishes the script. A cell passes only if:
//!
//! 1. every session ends committed with an outcome **bit-identical** to
//!    the fault-free reference (serialized-form equality), or explicitly
//!    aborted exactly when the reference is infeasible — so faults can
//!    cause neither payment drift nor silent divergence;
//! 2. per-client payments equal the reference to the bit;
//! 3. the final journal scans clean: zero torn records, and every
//!    `close_begin` has exactly one `close_commit`;
//! 4. recovery was bounded: at most one restart (plans inject at most
//!    one crash) and the per-step retry budget was never exhausted.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::Path;
use std::time::Duration;

use fl_auction::{run_auction, serial, AuctionError, Instance};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::client::{Client, ClientConfig, ClientError, CloseReply};
use crate::daemon::{Daemon, DaemonConfig};
use crate::faults::FaultPlan;
use crate::journal::{scan_bytes, CrashPoint, Record, RecordKind};
use crate::session::Limits;
use crate::testutil::TempDir;
use crate::wire::{BidParams, OpenParams};

/// The fault families the matrix exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Response frames vanish.
    Drop,
    /// Response frames stall.
    Delay,
    /// Response frames arrive twice.
    Dup,
    /// The daemon dies mid-append, tearing the journal tail.
    Partial,
    /// The daemon dies at a record boundary (before or after a whole
    /// record reached disk).
    Crash,
}

impl FaultKind {
    /// All five families, matrix order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Dup,
        FaultKind::Partial,
        FaultKind::Crash,
    ];

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Dup => "dup",
            FaultKind::Partial => "partial",
            FaultKind::Crash => "crash",
        }
    }

    /// Parses a display name.
    pub fn parse_str(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// Matrix dimensions.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Fault families to run.
    pub kinds: Vec<FaultKind>,
    /// Seeds per family (seed values `0..seeds`).
    pub seeds: u64,
    /// Sessions per cell script.
    pub sessions: u32,
}

impl MatrixConfig {
    /// The acceptance matrix: all 5 families × 20 seeds.
    pub fn full() -> MatrixConfig {
        MatrixConfig {
            kinds: FaultKind::ALL.to_vec(),
            seeds: 20,
            sessions: 3,
        }
    }

    /// The CI smoke matrix: all families, 4 seeds.
    pub fn smoke() -> MatrixConfig {
        MatrixConfig {
            kinds: FaultKind::ALL.to_vec(),
            seeds: 4,
            sessions: 2,
        }
    }
}

/// One cell's verdict.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Fault family.
    pub kind: FaultKind,
    /// Seed.
    pub seed: u64,
    /// Whether every invariant held.
    pub pass: bool,
    /// First violation, empty when passing.
    pub detail: String,
    /// Daemon deaths observed (0 or 1).
    pub crashes: u32,
    /// Client retry attempts consumed.
    pub retries: u64,
}

/// The whole matrix's verdict.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Per-cell outcomes, kinds-major.
    pub cells: Vec<CellOutcome>,
}

impl MatrixReport {
    /// Cells that held every invariant.
    pub fn passed(&self) -> usize {
        self.cells.iter().filter(|c| c.pass).count()
    }

    /// Cells that violated an invariant.
    pub fn failed(&self) -> Vec<&CellOutcome> {
        self.cells.iter().filter(|c| !c.pass).collect()
    }

    /// Human-readable summary table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut by_kind: Vec<(FaultKind, usize, usize, u64, u32)> = Vec::new();
        for kind in FaultKind::ALL {
            let cells: Vec<&CellOutcome> = self.cells.iter().filter(|c| c.kind == kind).collect();
            if cells.is_empty() {
                continue;
            }
            by_kind.push((
                kind,
                cells.iter().filter(|c| c.pass).count(),
                cells.len(),
                cells.iter().map(|c| c.retries).sum(),
                cells.iter().map(|c| c.crashes).sum(),
            ));
        }
        for (kind, pass, total, retries, crashes) in by_kind {
            out.push_str(&format!(
                "{:<8} {pass}/{total} pass  {crashes} crashes  {retries} retries\n",
                kind.as_str()
            ));
        }
        for cell in self.failed() {
            out.push_str(&format!(
                "FAIL {}#{}: {}\n",
                cell.kind.as_str(),
                cell.seed,
                cell.detail
            ));
        }
        out
    }
}

/// Runs the matrix sequentially; each cell gets a fresh scratch journal.
pub fn run_matrix(cfg: &MatrixConfig) -> MatrixReport {
    let mut cells = Vec::new();
    for &kind in &cfg.kinds {
        for seed in 0..cfg.seeds {
            cells.push(run_cell(kind, seed, cfg.sessions));
        }
    }
    MatrixReport { cells }
}

// ---------------------------------------------------------------------
// Script generation and local reference.

struct ScriptSession {
    params: OpenParams,
    clients: Vec<(f64, f64)>,
    bids: Vec<BidParams>,
    /// `Some(json)` = committed reference outcome (lossless encoding);
    /// `None` = the reference run is infeasible.
    reference: Option<String>,
}

fn build_script(seed: u64, sessions: u32) -> Vec<ScriptSession> {
    let mut rng = StdRng::seed_from_u64(0xc4a0_5e5e ^ seed.wrapping_mul(0x9e37_79b9));
    (0..sessions)
        .map(|idx| {
            let t = rng.random_range(5..=9);
            let k = rng.random_range(1..=2u32);
            let params = OpenParams::new(seed.wrapping_mul(1000) + u64::from(idx) + 1, t, k, 60.0);
            let n_clients = rng.random_range(3..=5u32);
            let clients: Vec<(f64, f64)> = (0..n_clients)
                .map(|_| (1.0 + rng.next_f64() * 2.0, 2.0 + rng.next_f64() * 4.0))
                .collect();
            let mut bids = Vec::new();
            for client in 0..n_clients {
                for _ in 0..rng.random_range(1..=2) {
                    let a = rng.random_range(1..=t);
                    let d = rng.random_range(a..=t);
                    bids.push(BidParams {
                        client,
                        price: 1.0 + rng.next_f64() * 9.0,
                        theta: 0.4 + rng.next_f64() * 0.4,
                        a,
                        d,
                        c: rng.random_range(1..=(d - a + 1)),
                    });
                }
            }
            let reference = reference_outcome(&params, &clients, &bids);
            ScriptSession {
                params,
                clients,
                bids,
                reference,
            }
        })
        .collect()
}

/// The fault-free ground truth, computed in-process on an identical
/// instance — `run_auction` is deterministic, so this *is* what a
/// fault-free daemon run would commit.
fn reference_outcome(
    params: &OpenParams,
    clients: &[(f64, f64)],
    bids: &[BidParams],
) -> Option<String> {
    let config = params.to_config().expect("script params are valid");
    let mut instance = Instance::new(config);
    for &(t_cmp, t_com) in clients {
        instance.add_client(
            fl_auction::ClientProfile::new(t_cmp, t_com).expect("script profiles are valid"),
        );
    }
    for b in bids {
        let bid = fl_auction::Bid::new(
            b.price,
            b.theta,
            fl_auction::Window::new(fl_auction::Round(b.a), fl_auction::Round(b.d)),
            b.c,
        )
        .expect("script bids are valid");
        instance
            .add_bid(fl_auction::ClientId(b.client), bid)
            .expect("script bids attach");
    }
    match run_auction(&instance) {
        Ok(outcome) => Some(serial::outcome_to_json(&outcome)),
        Err(AuctionError::Infeasible) => None,
        Err(e) => panic!("reference solve failed unexpectedly: {e}"),
    }
}

// ---------------------------------------------------------------------
// Cell execution.

fn fault_plan(kind: FaultKind, seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(0xfa01 ^ seed);
    let crash_target = |rng: &mut StdRng, cut: f64| {
        // Aim at the records every script produces several of.
        let kinds = [
            RecordKind::Bid,
            RecordKind::CloseBegin,
            RecordKind::CloseCommit,
        ];
        Some(CrashPoint {
            kind: kinds[rng.random_range(0..kinds.len())],
            nth: rng.random_range(1..=2),
            cut,
        })
    };
    match kind {
        FaultKind::Drop => FaultPlan {
            seed,
            drop_resp: 0.25,
            ..FaultPlan::default()
        },
        FaultKind::Delay => FaultPlan {
            seed,
            delay: Some((0.5, 2)),
            ..FaultPlan::default()
        },
        FaultKind::Dup => FaultPlan {
            seed,
            dup_resp: 0.3,
            ..FaultPlan::default()
        },
        FaultKind::Partial => {
            let cut = 0.2 + rng.next_f64() * 0.7;
            FaultPlan {
                seed,
                crash: crash_target(&mut rng, cut),
                ..FaultPlan::default()
            }
        }
        FaultKind::Crash => FaultPlan {
            seed,
            crash: crash_target(&mut rng, if seed.is_multiple_of(2) { 0.0 } else { 1.0 }),
            ..FaultPlan::default()
        },
    }
}

fn chaos_client(addr: SocketAddr, seed: u64) -> Client {
    Client::new(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(60),
            max_attempts: 12,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(40),
            seed,
        },
    )
}

struct Cell {
    daemon: Daemon,
    client: Client,
    plan: FaultPlan,
    journal: std::path::PathBuf,
    seed: u64,
    crashes: u32,
    retries: u64,
}

impl Cell {
    const MAX_RESTARTS: u32 = 3;

    fn daemon_config(journal: &Path, plan: FaultPlan) -> DaemonConfig {
        let mut cfg = DaemonConfig::new(journal.to_path_buf());
        cfg.faults = Some(plan);
        cfg.io_timeout = Duration::from_millis(250);
        cfg.limits = Limits {
            max_sessions: 64,
            max_inflight_close: 2,
        };
        cfg
    }

    fn start(journal: &Path, plan: FaultPlan, seed: u64) -> Result<Cell, String> {
        let daemon = Daemon::start(Self::daemon_config(journal, plan))
            .map_err(|e| format!("daemon start: {e}"))?;
        let client = chaos_client(daemon.addr(), seed);
        Ok(Cell {
            client,
            daemon,
            plan,
            journal: journal.to_path_buf(),
            seed,
            crashes: 0,
            retries: 0,
        })
    }

    /// Restarts the daemon from the journal after an injected death.
    fn restart(&mut self) -> Result<(), String> {
        self.crashes += 1;
        if self.crashes > Self::MAX_RESTARTS {
            return Err("unbounded recovery: too many restarts".into());
        }
        self.retries += self.client.retries();
        self.daemon.stop();
        self.plan = self.plan.after_crash();
        self.daemon = Daemon::start(Self::daemon_config(&self.journal, self.plan))
            .map_err(|e| format!("daemon restart: {e}"))?;
        let mut next = chaos_client(
            self.daemon.addr(),
            self.seed.wrapping_add(self.crashes.into()),
        );
        next.adopt_sessions(&self.client);
        self.client = next;
        Ok(())
    }

    /// Runs one client call, restarting through an injected death. A
    /// step is attempted at most once per daemon incarnation plus one
    /// final time, which bounds recovery. `rewind` names the session a
    /// mutating op targets: after a restart its seq counter is rewound
    /// so the retry reuses the in-flight seq and dedups server-side.
    fn step<T>(
        &mut self,
        rewind: Option<&str>,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, String> {
        loop {
            match op(&mut self.client) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if self.daemon.crashed() {
                        self.restart()?;
                        if let Some(session) = rewind {
                            self.client.rewind_seq(session);
                        }
                        continue;
                    }
                    return Err(format!("step failed without a crash: {e}"));
                }
            }
        }
    }
}

fn run_cell(kind: FaultKind, seed: u64, sessions: u32) -> CellOutcome {
    let fail = |detail: String, crashes: u32, retries: u64| CellOutcome {
        kind,
        seed,
        pass: false,
        detail,
        crashes,
        retries,
    };
    let dir = TempDir::new(&format!("chaos-{}-{seed}", kind.as_str()));
    let journal = dir.path().join("wal.jsonl");
    let script = build_script(
        seed.wrapping_mul(31)
            .wrapping_add(kind.as_str().len() as u64),
        sessions,
    );
    let plan = fault_plan(kind, seed);

    let mut cell = match Cell::start(&journal, plan, seed) {
        Ok(c) => c,
        Err(e) => return fail(e, 0, 0),
    };

    // Drive the script.
    let mut session_ids = Vec::new();
    for (idx, s) in script.iter().enumerate() {
        let params = s.params.clone();
        let sid = match cell.step(None, |c| c.open(params.clone())) {
            Ok(sid) => sid,
            Err(e) => {
                return fail(
                    format!("open session {idx}: {e}"),
                    cell.crashes,
                    cell.retries,
                )
            }
        };
        for &(t_cmp, t_com) in &s.clients {
            if let Err(e) = cell.step(Some(&sid), |c| c.add_client(&sid, t_cmp, t_com)) {
                return fail(format!("add client: {e}"), cell.crashes, cell.retries);
            }
        }
        for bid in &s.bids {
            if let Err(e) = cell.step(Some(&sid), |c| c.add_bid(&sid, *bid)) {
                return fail(format!("add bid: {e}"), cell.crashes, cell.retries);
            }
        }
        if let Err(e) = cell.step(Some(&sid), |c| c.close(&sid)) {
            return fail(format!("close: {e}"), cell.crashes, cell.retries);
        }
        session_ids.push(sid);
    }

    // Verify every epoch against the fault-free reference.
    for (s, sid) in script.iter().zip(&session_ids) {
        let reply = match cell.step(None, |c| c.outcome(sid)) {
            Ok(r) => r,
            Err(e) => return fail(format!("query outcome: {e}"), cell.crashes, cell.retries),
        };
        match (&s.reference, &reply) {
            (Some(expected), CloseReply::Committed(outcome)) => {
                let got = serial::outcome_to_json(outcome);
                if &got != expected {
                    return fail(
                        format!("outcome drift in {sid}: expected {expected} got {got}"),
                        cell.crashes,
                        cell.retries,
                    );
                }
                // Payments must match per client, bit for bit.
                let expected_outcome =
                    serial::outcome_from_json(expected).expect("reference re-parses");
                for client_idx in 0..s.clients.len() as u32 {
                    // Same fold (identity 0.0, winner order) as the
                    // daemon's payment handler, so equality is bitwise.
                    let expect_total: f64 = expected_outcome
                        .solution()
                        .winners()
                        .iter()
                        .filter(|w| w.bid_ref.client.0 == client_idx)
                        .fold(0.0f64, |acc, w| acc + w.payment);
                    match cell.step(None, |c| c.payments(sid, client_idx)) {
                        Ok(crate::client::PaymentReply::Committed { total, .. }) => {
                            if total.to_bits() != expect_total.to_bits() {
                                return fail(
                                    format!(
                                        "payment drift in {sid} client {client_idx}: \
                                         expected {expect_total} got {total}"
                                    ),
                                    cell.crashes,
                                    cell.retries,
                                );
                            }
                        }
                        Ok(other) => {
                            return fail(
                                format!("payment status mismatch: {other:?}"),
                                cell.crashes,
                                cell.retries,
                            )
                        }
                        Err(e) => {
                            return fail(format!("query payments: {e}"), cell.crashes, cell.retries)
                        }
                    }
                }
            }
            (None, CloseReply::Aborted(reason)) => {
                if reason != "infeasible" {
                    return fail(
                        format!("abort reason drift: {reason:?}"),
                        cell.crashes,
                        cell.retries,
                    );
                }
            }
            (expected, got) => {
                return fail(
                    format!("decision drift in {sid}: reference {expected:?} vs daemon {got:?}"),
                    cell.crashes,
                    cell.retries,
                )
            }
        }
    }

    // Journal forensics: zero torn records, balanced close markers.
    let retries = cell.retries + cell.client.retries();
    let crashes = cell.crashes;
    cell.daemon.stop();
    let bytes = match std::fs::read(&journal) {
        Ok(b) => b,
        Err(e) => return fail(format!("read journal: {e}"), crashes, retries),
    };
    let scan = scan_bytes(&bytes);
    if scan.torn {
        return fail("journal left torn after recovery".into(), crashes, retries);
    }
    let mut begins: HashMap<&str, u32> = HashMap::new();
    let mut commits: HashMap<&str, u32> = HashMap::new();
    for rec in &scan.records {
        match rec {
            Record::CloseBegin { session, .. } => *begins.entry(session).or_default() += 1,
            Record::CloseCommit { session, .. } => *commits.entry(session).or_default() += 1,
            _ => {}
        }
    }
    for sid in &session_ids {
        if begins.get(sid.as_str()) != Some(&1) || commits.get(sid.as_str()) != Some(&1) {
            return fail(
                format!(
                    "unbalanced close markers for {sid}: {} begins, {} commits",
                    begins.get(sid.as_str()).copied().unwrap_or(0),
                    commits.get(sid.as_str()).copied().unwrap_or(0)
                ),
                crashes,
                retries,
            );
        }
    }

    CellOutcome {
        kind,
        seed,
        pass: true,
        detail: String::new(),
        crashes,
        retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_and_mostly_feasible() {
        let a = build_script(7, 3);
        let b = build_script(7, 3);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.params, y.params);
            assert_eq!(x.bids, y.bids);
            assert_eq!(x.reference, y.reference);
        }
        // Across a handful of seeds, at least one committed epoch must
        // exist or the matrix would certify nothing.
        let any_feasible = (0..8u64)
            .flat_map(|s| build_script(s, 3))
            .any(|s| s.reference.is_some());
        assert!(any_feasible);
    }

    #[test]
    fn fault_plans_differ_by_kind() {
        let drop = fault_plan(FaultKind::Drop, 1);
        assert!(drop.drop_resp > 0.0 && drop.crash.is_none());
        let partial = fault_plan(FaultKind::Partial, 1);
        let cp = partial.crash.unwrap();
        assert!(cp.cut > 0.0 && cp.cut < 1.0, "partial must tear: {cp:?}");
        let crash = fault_plan(FaultKind::Crash, 1);
        let cp = crash.crash.unwrap();
        assert!(cp.cut == 0.0 || cp.cut == 1.0, "crash is boundary-clean");
    }

    #[test]
    fn single_fault_free_cell_passes() {
        // A cell with an empty plan exercises the full driver path.
        let cell = run_cell(FaultKind::Delay, 0, 1);
        assert!(cell.pass, "{}", cell.detail);
    }
}

//! `flpd-top` — live terminal view of a running daemon's stats plane.
//!
//! ```text
//! flpd-top --addr HOST:PORT [--interval-ms N] [--iterations N] [--check]
//! ```
//!
//! Polls the daemon's `stats` and `health` admin commands and renders a
//! compact refresh: uptime, session/FSM census, shed count, per-command
//! latency quantiles and every non-zero error counter. With
//! `--iterations N` it exits after N polls (the default is to poll
//! until interrupted).
//!
//! `--check` turns the tool into a scripted smoke probe (used by CI):
//! it drives one full auction session against the daemon, then asserts
//! that `stats` is well-formed with non-zero per-command counts, that
//! `health` reports `ok`, and that the `flight` dump parses as a valid
//! flight-recorder document. Exit code 0 means the observability plane
//! is live and coherent; 1 names the first violated expectation.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use fl_flpd::client::{Client, ClientConfig};
use fl_flpd::wire::{BidParams, OpenParams};
use fl_telemetry::flight::events_from_json;
use fl_telemetry::json::Json;

struct Opts {
    addr: SocketAddr,
    interval: Duration,
    iterations: Option<u64>,
    check: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut addr: Option<SocketAddr> = None;
    let mut interval = Duration::from_millis(1000);
    let mut iterations: Option<u64> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => {
                addr = Some(
                    val("--addr")?
                        .parse()
                        .map_err(|e| format!("bad --addr: {e}"))?,
                );
            }
            "--interval-ms" => {
                interval = Duration::from_millis(
                    val("--interval-ms")?
                        .parse()
                        .map_err(|e| format!("bad --interval-ms: {e}"))?,
                );
            }
            "--iterations" => {
                iterations = Some(
                    val("--iterations")?
                        .parse()
                        .map_err(|e| format!("bad --iterations: {e}"))?,
                );
            }
            "--check" => check = true,
            "--help" | "-h" => return Err("usage".into()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Opts {
        addr: addr.ok_or("missing --addr")?,
        interval,
        iterations,
        check,
    })
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            if e != "usage" {
                eprintln!("flpd-top: {e}");
            }
            eprintln!(
                "usage: flpd-top --addr HOST:PORT [--interval-ms N] [--iterations N] [--check]"
            );
            return ExitCode::from(1);
        }
    };
    if opts.check {
        return match check(opts.addr) {
            Ok(()) => {
                println!("flpd-top: check ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("flpd-top: check failed: {e}");
                ExitCode::from(1)
            }
        };
    }
    let mut client = Client::new(opts.addr, ClientConfig::default());
    let mut polls = 0u64;
    loop {
        match client.stats_doc() {
            Ok(doc) => render(&doc),
            Err(e) => eprintln!("flpd-top: stats failed: {e}"),
        }
        polls += 1;
        if opts.iterations.is_some_and(|n| polls >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(opts.interval);
    }
}

fn u64_of(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// One compact refresh of the stats document.
fn render(doc: &Json) {
    let uptime_s = u64_of(doc, "uptime_ms") as f64 / 1e3;
    let fsm = doc.get("fsm");
    let census = |k: &str| fsm.map_or(0, |f| u64_of(f, k));
    println!(
        "flpd-top: up {uptime_s:.1}s  sessions {} (collecting {} closing {} committed {} aborted {})  closed {}  inflight {}  shed {}",
        u64_of(doc, "sessions"),
        census("collecting"),
        census("closing"),
        census("committed"),
        census("aborted"),
        u64_of(doc, "closed"),
        u64_of(doc, "inflight_close"),
        u64_of(doc, "shed"),
    );
    let live = doc.get("live");
    if let Some(Json::Obj(hists)) = live.and_then(|l| l.get("hists")) {
        for (name, h) in hists {
            let Some(op) = name.strip_prefix("service.cmd.") else {
                continue;
            };
            let f = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
            println!(
                "flpd-top:   {:>8}  n {:<6}  p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms",
                op.trim_end_matches("_ms"),
                u64_of(h, "n"),
                f("p50"),
                f("p90"),
                f("p99"),
            );
        }
    }
    if let Some(Json::Obj(counters)) = live.and_then(|l| l.get("counters")) {
        let errs: Vec<String> = counters
            .iter()
            .filter_map(|(name, v)| {
                let code = name.strip_prefix("service.err.")?;
                let n = v.as_u64().filter(|&n| n > 0)?;
                Some(format!("{code}={n}"))
            })
            .collect();
        if !errs.is_empty() {
            println!("flpd-top:   errors  {}", errs.join("  "));
        }
    }
}

/// The scripted CI probe: drive one session, then hold the admin plane
/// to its contract.
fn check(addr: SocketAddr) -> Result<(), String> {
    let mut client = Client::new(addr, ClientConfig::default());
    let sid = client
        .open(OpenParams::new(0, 6, 1, 60.0))
        .map_err(|e| format!("open: {e}"))?;
    for c in 0..2u32 {
        client
            .add_client(&sid, 1.5, 3.0)
            .map_err(|e| format!("add_client: {e}"))?;
        client
            .add_bid(
                &sid,
                BidParams {
                    client: c,
                    price: 2.0 + f64::from(c),
                    theta: 0.55,
                    a: 1,
                    d: 6,
                    c: 6,
                },
            )
            .map_err(|e| format!("add_bid: {e}"))?;
    }
    client.close(&sid).map_err(|e| format!("close: {e}"))?;
    client
        .payments(&sid, 0)
        .map_err(|e| format!("payments: {e}"))?;

    let stats = client.stats_doc().map_err(|e| format!("stats: {e}"))?;
    if stats.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err("stats reply not ok".into());
    }
    let hists = stats
        .get("live")
        .and_then(|l| l.get("hists"))
        .ok_or("stats without live.hists")?;
    for op in ["open", "client", "bid", "close", "payment"] {
        let n = hists
            .get(&format!("service.cmd.{op}_ms"))
            .map_or(0, |h| u64_of(h, "n"));
        if n == 0 {
            return Err(format!("service.cmd.{op}_ms has zero samples"));
        }
    }
    let counters = stats
        .get("live")
        .and_then(|l| l.get("counters"))
        .ok_or("stats without live.counters")?;
    for code in fl_flpd::ErrCode::ALL {
        if counters.get(&format!("service.err.{code}")).is_none() {
            return Err(format!("service.err.{code} counter not registered"));
        }
    }

    let health = client.health().map_err(|e| format!("health: {e}"))?;
    match health.get("status").and_then(Json::as_str) {
        Some("ok") => {}
        other => return Err(format!("health status {other:?}, expected \"ok\"")),
    }

    let flight = client.flight().map_err(|e| format!("flight: {e}"))?;
    let doc = flight.get("flight").ok_or("flight reply without dump")?;
    let events = events_from_json(doc).map_err(|e| format!("flight dump invalid: {e}"))?;
    if events.is_empty() {
        return Err("flight dump is empty after a full session".into());
    }
    Ok(())
}

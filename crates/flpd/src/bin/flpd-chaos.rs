//! `flpd-chaos` — certify crash consistency under the fault matrix.
//!
//! ```text
//! flpd-chaos [--smoke] [--seeds N] [--kinds drop,delay,dup,partial,crash]
//! ```
//!
//! Default is the full acceptance matrix (5 fault families × 20 seeds).
//! `--smoke` runs the reduced CI matrix. Exits non-zero if any cell
//! violates a consistency invariant.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::process::ExitCode;

use fl_flpd::chaos::{run_matrix, FaultKind, MatrixConfig};

fn main() -> ExitCode {
    let mut cfg = MatrixConfig::full();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg = MatrixConfig::smoke(),
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seeds = n,
                None => {
                    eprintln!("flpd-chaos: --seeds needs a number");
                    return ExitCode::from(1);
                }
            },
            "--kinds" => {
                let Some(list) = args.next() else {
                    eprintln!("flpd-chaos: --kinds needs a comma-separated list");
                    return ExitCode::from(1);
                };
                let mut kinds = Vec::new();
                for name in list.split(',') {
                    match FaultKind::parse_str(name.trim()) {
                        Some(k) => kinds.push(k),
                        None => {
                            eprintln!("flpd-chaos: unknown fault kind {name:?}");
                            return ExitCode::from(1);
                        }
                    }
                }
                cfg.kinds = kinds;
            }
            "--help" | "-h" => {
                println!(
                    "usage: flpd-chaos [--smoke] [--seeds N] \
                     [--kinds drop,delay,dup,partial,crash]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flpd-chaos: unknown argument {other:?}");
                return ExitCode::from(1);
            }
        }
    }

    println!(
        "flpd-chaos: {} fault families x {} seeds, {} sessions per cell",
        cfg.kinds.len(),
        cfg.seeds,
        cfg.sessions
    );
    let report = run_matrix(&cfg);
    print!("{}", report.summary());
    let failed = report.failed().len();
    println!(
        "flpd-chaos: {}/{} cells pass",
        report.passed(),
        report.cells.len()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

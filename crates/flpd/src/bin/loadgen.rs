//! `loadgen` — open-loop load generator for the flpd daemon.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--sessions N] [--rate R] [--process poisson|uniform|bursty]
//!         [--clients N] [--seed S] [--json]
//! ```
//!
//! Sessions arrive on an open-loop schedule drawn from
//! `fl_workload::arrival::ArrivalProcess` — arrivals do not wait for
//! earlier sessions to finish, so an overloaded daemon is observed
//! shedding load rather than silently pacing the generator. Without
//! `--addr` a daemon is self-hosted on an ephemeral port with a scratch
//! journal. Reports p50/p90/p99 latency for the full session and for
//! each phase (open / submit / close / payments), plus achieved
//! sessions/sec. After the run the daemon's own `stats` document is
//! fetched so the client-observed quantiles can be read side by side
//! with the server's per-command quantiles — the gap between the two
//! is queueing plus wire time.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fl_flpd::client::{Client, ClientConfig};
use fl_flpd::daemon::DaemonConfig;
use fl_flpd::wire::{BidParams, OpenParams};
use fl_flpd::{CloseReply, Daemon};
use fl_telemetry::json::Json;
use fl_workload::ArrivalProcess;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

struct Opts {
    addr: Option<SocketAddr>,
    sessions: usize,
    rate: f64,
    process: String,
    clients: u32,
    seed: u64,
    json: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: None,
        sessions: 40,
        rate: 20.0,
        process: "poisson".into(),
        clients: 4,
        seed: 1,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => {
                opts.addr = Some(
                    val("--addr")?
                        .parse()
                        .map_err(|e| format!("bad --addr: {e}"))?,
                );
            }
            "--sessions" => {
                opts.sessions = val("--sessions")?
                    .parse()
                    .map_err(|e| format!("bad --sessions: {e}"))?;
            }
            "--rate" => {
                opts.rate = val("--rate")?
                    .parse()
                    .map_err(|e| format!("bad --rate: {e}"))?;
            }
            "--process" => opts.process = val("--process")?,
            "--clients" => {
                opts.clients = val("--clients")?
                    .parse()
                    .map_err(|e| format!("bad --clients: {e}"))?;
            }
            "--seed" => {
                opts.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--json" => opts.json = true,
            "--help" | "-h" => {
                return Err("usage".into());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn arrival(process: &str, rate: f64) -> Result<ArrivalProcess, String> {
    match process {
        "poisson" => Ok(ArrivalProcess::Poisson { rate_per_sec: rate }),
        "uniform" => Ok(ArrivalProcess::Uniform { rate_per_sec: rate }),
        "bursty" => Ok(ArrivalProcess::Bursty {
            rate_per_sec: rate,
            burst: 4,
        }),
        other => Err(format!("unknown arrival process {other:?}")),
    }
}

/// Client-observed wall time of each session phase.
struct PhaseTimes {
    open: Duration,
    submit: Duration,
    close: Duration,
    payments: Duration,
    total: Duration,
}

/// One full session lifecycle; returns its per-phase latency on
/// commit/abort.
///
/// The workload shape (horizons, windows, prices) is a pure function of
/// `seed` and `idx`; `run_id` — fresh wall-clock entropy per process —
/// only perturbs the *client* seed, which feeds open-nonces and backoff
/// jitter. Without it, a second loadgen run with the same `--seed`
/// against a long-lived daemon would re-derive last run's nonces, and
/// the daemon's idempotent `open` would hand back the old, already
/// closed sessions instead of fresh ones.
fn run_session(
    addr: SocketAddr,
    seed: u64,
    run_id: u64,
    idx: u64,
    clients: u32,
    retries: &AtomicU64,
) -> Result<PhaseTimes, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ idx.wrapping_mul(0x9e37_79b9));
    let mut client = Client::new(
        addr,
        ClientConfig {
            seed: run_id ^ seed.wrapping_add(idx),
            ..ClientConfig::default()
        },
    );
    let start = Instant::now();
    let t = rng.random_range(5..=8);
    let sid = client
        .open(OpenParams::new(0, t, 1, 60.0))
        .map_err(|e| format!("open: {e}"))?;
    let opened = Instant::now();
    for c in 0..clients {
        client
            .add_client(&sid, 1.0 + rng.next_f64(), 2.0 + rng.next_f64() * 2.0)
            .map_err(|e| format!("add_client: {e}"))?;
        let a = rng.random_range(1..=t);
        let d = rng.random_range(a..=t);
        client
            .add_bid(
                &sid,
                BidParams {
                    client: c,
                    price: 1.0 + rng.next_f64() * 5.0,
                    theta: 0.5 + rng.next_f64() * 0.3,
                    a,
                    d,
                    c: rng.random_range(1..=(d - a + 1)),
                },
            )
            .map_err(|e| format!("add_bid: {e}"))?;
    }
    let submitted = Instant::now();
    let committed = match client.close(&sid).map_err(|e| format!("close: {e}"))? {
        CloseReply::Committed(_) => true,
        CloseReply::Aborted(_) => false,
    };
    let closed = Instant::now();
    if committed {
        for c in 0..clients {
            client
                .payments(&sid, c)
                .map_err(|e| format!("payments: {e}"))?;
        }
    }
    retries.fetch_add(client.retries(), Ordering::Relaxed);
    Ok(PhaseTimes {
        open: opened - start,
        submit: submitted - opened,
        close: closed - submitted,
        payments: closed.elapsed(),
        total: start.elapsed(),
    })
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            if e != "usage" {
                eprintln!("loadgen: {e}");
            }
            eprintln!(
                "usage: loadgen [--addr HOST:PORT] [--sessions N] [--rate R]\n\
                 \x20              [--process poisson|uniform|bursty] [--clients N] [--seed S] [--json]"
            );
            return ExitCode::from(1);
        }
    };
    let process = match arrival(&opts.process, opts.rate) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(1);
        }
    };

    // Self-host unless a target was given.
    let mut hosted: Option<Daemon> = None;
    let addr = match opts.addr {
        Some(a) => a,
        None => {
            let dir = fl_flpd::testutil::TempDir::new("loadgen");
            let daemon = match Daemon::start(DaemonConfig::new(dir.path().join("wal.jsonl"))) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("loadgen: self-hosted daemon failed to start: {e}");
                    return ExitCode::from(1);
                }
            };
            let a = daemon.addr();
            hosted = Some(daemon);
            // Keep the scratch dir alive for the run.
            std::mem::forget(dir);
            a
        }
    };

    let schedule = process.schedule(opts.seed, opts.sessions);
    let retries = Arc::new(AtomicU64::new(0));
    let run_id = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let started = Instant::now();
    let mut workers = Vec::with_capacity(opts.sessions);
    for (idx, offset) in schedule.into_iter().enumerate() {
        let retries = Arc::clone(&retries);
        let clients = opts.clients;
        let seed = opts.seed;
        workers.push(std::thread::spawn(move || {
            let now = started.elapsed();
            if offset > now {
                std::thread::sleep(offset - now);
            }
            run_session(addr, seed, run_id, idx as u64, clients, &retries)
        }));
    }
    let mut sessions = Vec::new();
    let mut failures = 0usize;
    for w in workers {
        match w.join() {
            Ok(Ok(times)) => sessions.push(times),
            Ok(Err(e)) => {
                failures += 1;
                eprintln!("loadgen: session failed: {e}");
            }
            Err(_) => failures += 1,
        }
    }
    let wall = started.elapsed();

    // The daemon's own view, fetched while it is still up: server-side
    // per-command quantiles to compare with the client-observed ones.
    let server_stats = Client::new(addr, ClientConfig::default()).stats_doc().ok();
    if let Some(mut d) = hosted.take() {
        d.stop();
    }

    let mut totals: Vec<Duration> = sessions.iter().map(|s| s.total).collect();
    totals.sort_unstable();
    let done = totals.len();
    let throughput = done as f64 / wall.as_secs_f64();
    let (p50, p90, p99) = (
        percentile(&totals, 50.0),
        percentile(&totals, 90.0),
        percentile(&totals, 99.0),
    );
    let phase_rows: Vec<(&str, Vec<Duration>)> = vec![
        ("open", sessions.iter().map(|s| s.open).collect()),
        ("submit", sessions.iter().map(|s| s.submit).collect()),
        ("close", sessions.iter().map(|s| s.close).collect()),
        ("payments", sessions.iter().map(|s| s.payments).collect()),
    ];
    let retries = retries.load(Ordering::Relaxed);
    if opts.json {
        let phases = phase_rows
            .iter()
            .map(|(name, lat)| {
                let mut sorted = lat.clone();
                sorted.sort_unstable();
                format!(
                    "\"{name}\":{{\"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3}}}",
                    ms(percentile(&sorted, 50.0)),
                    ms(percentile(&sorted, 90.0)),
                    ms(percentile(&sorted, 99.0)),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{{\"sessions\":{done},\"failures\":{failures},\"wall_s\":{:.4},\
             \"sessions_per_sec\":{throughput:.3},\"p50_ms\":{:.3},\"p90_ms\":{:.3},\
             \"p99_ms\":{:.3},\"retries\":{retries},\"phases\":{{{phases}}}}}",
            wall.as_secs_f64(),
            ms(p50),
            ms(p90),
            ms(p99),
        );
    } else {
        println!(
            "loadgen: {done} sessions ({failures} failed) in {:.2}s = {throughput:.1} sessions/sec",
            wall.as_secs_f64()
        );
        println!(
            "loadgen: latency p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  ({retries} retries)",
            ms(p50),
            ms(p90),
            ms(p99),
        );
        for (name, lat) in &phase_rows {
            let mut sorted = lat.clone();
            sorted.sort_unstable();
            println!(
                "loadgen: phase {name:>8}  p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms",
                ms(percentile(&sorted, 50.0)),
                ms(percentile(&sorted, 90.0)),
                ms(percentile(&sorted, 99.0)),
            );
        }
        print_server_view(server_stats.as_ref());
    }
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints the daemon's own per-command quantiles next to nothing else —
/// the caller has just printed the client-observed ones, so the reader
/// can subtract the two columns mentally (server excludes queueing and
/// wire time).
fn print_server_view(stats: Option<&Json>) {
    let Some(hists) = stats
        .and_then(|doc| doc.get("live"))
        .and_then(|l| l.get("hists"))
    else {
        println!("loadgen: server stats unavailable");
        return;
    };
    let Json::Obj(members) = hists else {
        return;
    };
    for (name, h) in members {
        let Some(op) = name.strip_prefix("service.cmd.") else {
            continue;
        };
        let field = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
        println!(
            "loadgen: server {:>8}  p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms  (n={})",
            op.trim_end_matches("_ms"),
            field("p50"),
            field("p90"),
            field("p99"),
            h.get("n").and_then(Json::as_u64).unwrap_or(0),
        );
    }
}

//! `flpd` — run the crash-safe auction daemon in the foreground.
//!
//! ```text
//! flpd --journal wal.jsonl [--addr 127.0.0.1:7741] [--durability strict|epoch]
//!      [--max-conns N] [--max-inflight-close N] [--io-timeout-ms N]
//!      [--dump-dir DIR|none]
//! ```
//!
//! Fault injection is read from the `FLPD_FAULTS` environment variable
//! (see `fl_flpd::faults`). Automatic flight-recorder dumps (on shed
//! storms and after a recovery that repaired anything) land in
//! `--dump-dir`, `results/telemetry` by default; `--dump-dir none`
//! disables them. The process exits 0 on a client `shutdown` request,
//! 2 on an injected crash, and 1 on bad usage.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use fl_flpd::daemon::DaemonConfig;
use fl_flpd::journal::Durability;
use fl_flpd::{Daemon, FaultPlan};

fn usage() -> ExitCode {
    eprintln!(
        "usage: flpd --journal <path> [--addr HOST:PORT] [--durability strict|epoch]\n\
         \x20           [--max-conns N] [--max-inflight-close N] [--io-timeout-ms N]\n\
         \x20           [--dump-dir DIR|none]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut journal: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7741".to_string();
    let mut durability = Durability::Strict;
    let mut max_conns: Option<usize> = None;
    let mut max_inflight_close: Option<usize> = None;
    let mut io_timeout_ms: Option<u64> = None;
    let mut dump_dir: Option<PathBuf> = Some(PathBuf::from("results/telemetry"));

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("flpd: {name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--journal" => journal = take("--journal").map(PathBuf::from),
            "--addr" => match take("--addr") {
                Some(a) => addr = a,
                None => return usage(),
            },
            "--durability" => match take("--durability").as_deref() {
                Some("strict") => durability = Durability::Strict,
                Some("epoch") => durability = Durability::EpochOnly,
                _ => return usage(),
            },
            "--max-conns" => max_conns = take("--max-conns").and_then(|v| v.parse().ok()),
            "--max-inflight-close" => {
                max_inflight_close = take("--max-inflight-close").and_then(|v| v.parse().ok());
            }
            "--io-timeout-ms" => {
                io_timeout_ms = take("--io-timeout-ms").and_then(|v| v.parse().ok())
            }
            "--dump-dir" => match take("--dump-dir").as_deref() {
                Some("none") => dump_dir = None,
                Some(dir) => dump_dir = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flpd: unknown argument {other:?}");
                return usage();
            }
        }
    }
    let Some(journal) = journal else {
        return usage();
    };

    let faults = match FaultPlan::from_env() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("flpd: bad FLPD_FAULTS: {e}");
            return ExitCode::from(1);
        }
    };

    let mut cfg = DaemonConfig::new(journal);
    cfg.addr = addr;
    cfg.durability = durability;
    cfg.faults = faults;
    cfg.dump_dir = dump_dir;
    if let Some(n) = max_conns {
        cfg.max_conns = n;
    }
    if let Some(n) = max_inflight_close {
        cfg.limits.max_inflight_close = n;
    }
    if let Some(ms) = io_timeout_ms {
        cfg.io_timeout = Duration::from_millis(ms);
    }

    let mut daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("flpd: start failed: {e}");
            return ExitCode::from(1);
        }
    };
    let rec = daemon.recovery();
    println!(
        "flpd listening on {} (recovered {} sessions, {} replayed closes, {} aborted, {} bytes truncated)",
        daemon.addr(),
        rec.sessions,
        rec.replayed_closes,
        rec.aborted,
        rec.truncated_bytes
    );

    // The accept loop owns the lifecycle; park until it exits (client
    // shutdown request or injected crash).
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if daemon.crashed() {
            eprintln!("flpd: injected crash — exiting without cleanup");
            // Leak the daemon handle so Drop does not run a clean stop.
            std::mem::forget(daemon);
            return ExitCode::from(2);
        }
        if daemon.stopped() {
            daemon.stop();
            println!("flpd: shutdown complete");
            return ExitCode::SUCCESS;
        }
    }
}

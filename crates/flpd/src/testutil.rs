//! Scratch-directory helpers shared by tests, the chaos harness and the
//! bins. Everything lands under the workspace `target/` directory so the
//! repository tree and the host system stay untouched.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// The workspace-local scratch root (`target/flpd-scratch`).
pub fn scratch_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("flpd-scratch")
}

/// A unique directory under [`scratch_root`], removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `target/flpd-scratch/<tag>-<pid>-<n>/`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created — tests cannot proceed
    /// without scratch space.
    pub fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = scratch_root().join(format!("{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

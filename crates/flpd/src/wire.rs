//! The request side of the flpd wire protocol.
//!
//! Every request is one framed JSON object (see `fl_telemetry::frame`)
//! with an `"op"` discriminator, an optional `"id"` echo token, and — for
//! mutating operations — a `"session"` handle plus a client-chosen
//! `"seq"` number that makes retries idempotent: the daemon remembers the
//! highest applied `seq` per session and replays the stored response when
//! it sees the same `seq` again, so a client whose ack was lost can
//! resend without double-applying a bid.
//!
//! ```text
//! {"op":"open","id":1,"nonce":7,"t":6,"k":2,"t_max":60}
//! {"op":"client","id":2,"session":"s-1","seq":1,"t_cmp":2.0,"t_com":5.0}
//! {"op":"bid","id":3,"session":"s-1","seq":2,"client":0,
//!  "price":3.0,"theta":0.55,"a":1,"d":6,"c":6}
//! {"op":"close","id":4,"session":"s-1","seq":3}
//! {"op":"outcome","id":5,"session":"s-1"}
//! {"op":"payment","id":6,"session":"s-1","client":0}
//! ```
//!
//! An `open` carrying a `"budget"` member creates a *streaming* session:
//! its bids arrive via the `submit` op (same body as `bid`) and each one
//! is committed or rejected irrevocably on arrival by the online
//! mechanism (`fl_auction::OnlineAuction`); the response carries the
//! verdict, the posted payment, and the committed schedule.
//!
//! ```text
//! {"op":"open","id":1,"nonce":7,"t":6,"k":2,"t_max":60,"budget":120}
//! {"op":"submit","id":2,"session":"s-1","seq":1,"client":0,
//!  "price":3.0,"theta":0.55,"a":1,"d":6,"c":6}
//! ```
//!
//! Responses always carry `"ok"` and echo `"id"` when the request had
//! one; failures add `"code"`, `"retryable"` and `"detail"` from the
//! [`crate::error`] taxonomy.
//!
//! Requests may additionally carry a `"trace"` string — an end-to-end
//! trace id the daemon echoes on the response, stamps on its journal
//! records and flight-recorder events, and invents (`srv-<n>`) when the
//! client sent none. The admin plane adds three read-only ops: `stats`
//! (merged live-metrics snapshot), `health` (cheap liveness probe) and
//! `flight` (flight-recorder dump).

use fl_auction::{AuctionConfig, LocalIterationModel, QualifyMode, SweepStrategy};
use fl_telemetry::json::{self, Json};

use crate::error::{ErrCode, ServiceError};

/// Default horizon-sweep thread count for sessions that do not ask.
pub const DEFAULT_THREADS: usize = 1;

/// Parameters of an `open` request.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenParams {
    /// Client-chosen idempotency token: reopening with the same nonce
    /// returns the existing session instead of creating a twin.
    pub nonce: u64,
    /// Maximum number of global iterations `T`.
    pub t: u32,
    /// Clients required per round `K`.
    pub k: u32,
    /// Per-round wall-clock limit `t_max`.
    pub t_max: f64,
    /// Local-iteration model: `"linear"` or `"log"`.
    pub model: String,
    /// The model's parameter (scale for linear, eta for log).
    pub param: f64,
    /// Qualification mode: `"intent"` or `"literal"`.
    pub qualify: String,
    /// Horizon-sweep worker threads for this session's closes.
    pub threads: usize,
    /// Streaming-mode remuneration budget `B`: `Some` opens an online
    /// session whose bids arrive via `submit` and are decided on arrival
    /// under this budget; `None` (the default) opens a batch session.
    pub budget: Option<f64>,
}

impl OpenParams {
    /// A small default configuration (linear model, intent
    /// qualification, single-threaded sweep).
    pub fn new(nonce: u64, t: u32, k: u32, t_max: f64) -> OpenParams {
        OpenParams {
            nonce,
            t,
            k,
            t_max,
            model: "linear".into(),
            param: 1.0,
            qualify: "intent".into(),
            threads: DEFAULT_THREADS,
            budget: None,
        }
    }

    /// The same defaults opened in streaming mode under `budget`.
    pub fn streaming(nonce: u64, t: u32, k: u32, t_max: f64, budget: f64) -> OpenParams {
        OpenParams {
            budget: Some(budget),
            ..OpenParams::new(nonce, t, k, t_max)
        }
    }

    /// Builds the auction configuration these parameters describe.
    ///
    /// # Errors
    ///
    /// `BadRequest` on unknown model/qualify names or configuration
    /// values `AuctionConfig` rejects.
    pub fn to_config(&self) -> Result<AuctionConfig, ServiceError> {
        let model = match self.model.as_str() {
            "linear" => LocalIterationModel::Linear { scale: self.param },
            "log" => LocalIterationModel::LogInverse { eta: self.param },
            other => {
                return Err(ServiceError::new(
                    ErrCode::BadRequest,
                    format!("unknown model {other:?} (expected \"linear\" or \"log\")"),
                ))
            }
        };
        let qualify = match self.qualify.as_str() {
            "intent" => QualifyMode::Intent,
            "literal" => QualifyMode::Literal,
            other => {
                return Err(ServiceError::new(
                    ErrCode::BadRequest,
                    format!("unknown qualify mode {other:?}"),
                ))
            }
        };
        AuctionConfig::builder()
            .max_rounds(self.t)
            .clients_per_round(self.k)
            .round_time_limit(self.t_max)
            .local_model(model)
            .qualify_mode(qualify)
            .sweep_strategy(SweepStrategy::with_threads(self.threads.max(1)))
            .build()
            .map_err(|e| ServiceError::new(ErrCode::BadRequest, e.to_string()))
    }

    /// Serialises the parameter fields (shared by the wire request and
    /// the journal's `open` record).
    pub fn json_members(&self) -> Vec<(String, String)> {
        let mut members = vec![
            ("nonce".into(), self.nonce.to_string()),
            ("t".into(), self.t.to_string()),
            ("k".into(), self.k.to_string()),
            ("t_max".into(), json::number(self.t_max)),
            ("model".into(), json::string(&self.model)),
            ("param".into(), json::number(self.param)),
            ("qualify".into(), json::string(&self.qualify)),
            ("threads".into(), self.threads.to_string()),
        ];
        if let Some(budget) = self.budget {
            members.push(("budget".into(), json::number(budget)));
        }
        members
    }

    /// Reads the parameter fields back from a parsed document.
    ///
    /// # Errors
    ///
    /// Names the first missing or mistyped field.
    pub fn from_value(doc: &Json) -> Result<OpenParams, String> {
        Ok(OpenParams {
            nonce: get_u64(doc, "nonce")?,
            t: get_u32(doc, "t")?,
            k: get_u32(doc, "k")?,
            t_max: get_f64(doc, "t_max")?,
            model: opt_str(doc, "model").unwrap_or("linear").to_string(),
            param: opt_f64(doc, "param")?.unwrap_or(1.0),
            qualify: opt_str(doc, "qualify").unwrap_or("intent").to_string(),
            threads: opt_u64(doc, "threads")?.unwrap_or(DEFAULT_THREADS as u64) as usize,
            budget: opt_f64(doc, "budget")?,
        })
    }
}

/// Parameters of a `bid` request (mirrors `fl_auction::Bid` plus the
/// owning client index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidParams {
    /// Index of the client that owns the bid.
    pub client: u32,
    /// Claimed cost `b_ij`.
    pub price: f64,
    /// Local accuracy `theta_ij`.
    pub theta: f64,
    /// Availability window start round.
    pub a: u32,
    /// Availability window end round.
    pub d: u32,
    /// Battery-limited participation rounds `c_ij`.
    pub c: u32,
}

/// Request envelope fields that are not the operation itself: the echo
/// id and the propagated trace id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReqMeta {
    /// Client echo token, stamped back on the response.
    pub id: Option<u64>,
    /// End-to-end trace id, echoed on the response and stamped on
    /// journal records and flight events.
    pub trace: Option<String>,
}

impl ReqMeta {
    /// Meta carrying only an echo id (the common client case before
    /// tracing).
    pub fn with_id(id: u64) -> ReqMeta {
        ReqMeta {
            id: Some(id),
            trace: None,
        }
    }
}

/// A fully parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Merged live-metrics snapshot (admin plane).
    Stats,
    /// Cheap liveness + overload state (admin plane).
    Health,
    /// Flight-recorder dump (admin plane).
    Flight,
    /// Graceful daemon shutdown.
    Shutdown,
    /// Create (or idempotently re-fetch) a session.
    Open(OpenParams),
    /// Register a client profile in a session.
    Client {
        /// Session handle.
        session: String,
        /// Idempotency sequence number.
        seq: u64,
        /// Per-round computation time.
        t_cmp: f64,
        /// Per-round communication time.
        t_com: f64,
    },
    /// Submit a bid.
    Bid {
        /// Session handle.
        session: String,
        /// Idempotency sequence number.
        seq: u64,
        /// The bid body.
        bid: BidParams,
    },
    /// Submit a streaming bid for an irrevocable on-arrival decision
    /// (streaming sessions only).
    Submit {
        /// Session handle.
        session: String,
        /// Idempotency sequence number.
        seq: u64,
        /// The bid body.
        bid: BidParams,
    },
    /// Close the epoch: run the auction and commit the outcome.
    Close {
        /// Session handle.
        session: String,
        /// Idempotency sequence number.
        seq: u64,
    },
    /// Query the committed outcome of a closed session.
    Outcome {
        /// Session handle.
        session: String,
    },
    /// Query the payments owed to one client of a closed session.
    Payment {
        /// Session handle.
        session: String,
        /// Client index.
        client: u32,
    },
}

fn get<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    get(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("{key:?} not an unsigned integer"))
}

fn get_u32(doc: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(doc, key)?).map_err(|_| format!("{key:?} exceeds u32"))
}

fn get_f64(doc: &Json, key: &str) -> Result<f64, String> {
    get(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("{key:?} not a number"))
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    get(doc, key)?
        .as_str()
        .ok_or_else(|| format!("{key:?} not a string"))
}

fn opt_str<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    doc.get(key).and_then(Json::as_str)
}

fn opt_f64(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} not a number")),
    }
}

fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} not an unsigned integer")),
    }
}

/// Parses one request frame into its envelope meta and operation.
///
/// # Errors
///
/// `BadRequest` with the parse reason — the daemon answers these with an
/// error frame and keeps the connection.
pub fn parse_request(text: &str) -> Result<(ReqMeta, Request), ServiceError> {
    let bad = |why: String| ServiceError::new(ErrCode::BadRequest, why);
    let doc = json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let meta = ReqMeta {
        id: doc.get("id").and_then(Json::as_u64),
        trace: opt_str(&doc, "trace").map(str::to_string),
    };
    let op = get_str(&doc, "op").map_err(bad)?;
    let req = match op {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "health" => Request::Health,
        "flight" => Request::Flight,
        "shutdown" => Request::Shutdown,
        "open" => Request::Open(OpenParams::from_value(&doc).map_err(bad)?),
        "client" => Request::Client {
            session: get_str(&doc, "session").map_err(bad)?.to_string(),
            seq: get_u64(&doc, "seq").map_err(bad)?,
            t_cmp: get_f64(&doc, "t_cmp").map_err(bad)?,
            t_com: get_f64(&doc, "t_com").map_err(bad)?,
        },
        "bid" | "submit" => {
            let session = get_str(&doc, "session").map_err(bad)?.to_string();
            let seq = get_u64(&doc, "seq").map_err(bad)?;
            let bid = BidParams {
                client: get_u32(&doc, "client").map_err(bad)?,
                price: get_f64(&doc, "price").map_err(bad)?,
                theta: get_f64(&doc, "theta").map_err(bad)?,
                a: get_u32(&doc, "a").map_err(bad)?,
                d: get_u32(&doc, "d").map_err(bad)?,
                c: get_u32(&doc, "c").map_err(bad)?,
            };
            if op == "bid" {
                Request::Bid { session, seq, bid }
            } else {
                Request::Submit { session, seq, bid }
            }
        }
        "close" => Request::Close {
            session: get_str(&doc, "session").map_err(bad)?.to_string(),
            seq: get_u64(&doc, "seq").map_err(bad)?,
        },
        "outcome" => Request::Outcome {
            session: get_str(&doc, "session").map_err(bad)?.to_string(),
        },
        "payment" => Request::Payment {
            session: get_str(&doc, "session").map_err(bad)?.to_string(),
            client: get_u32(&doc, "client").map_err(bad)?,
        },
        other => return Err(bad(format!("unknown op {other:?}"))),
    };
    Ok((meta, req))
}

/// Serialises a request. `id` is the echo token the response will carry.
pub fn request_to_json(id: u64, req: &Request) -> String {
    request_with_trace(id, None, req)
}

/// Serialises a request carrying a trace id for end-to-end propagation.
pub fn request_with_trace(id: u64, trace: Option<&str>, req: &Request) -> String {
    let mut members = vec![("op".into(), json::string(op_name(req)))];
    members.push(("id".into(), id.to_string()));
    if let Some(trace) = trace {
        members.push(("trace".into(), json::string(trace)));
    }
    match req {
        Request::Ping | Request::Stats | Request::Health | Request::Flight | Request::Shutdown => {}
        Request::Open(p) => members.extend(p.json_members()),
        Request::Client {
            session,
            seq,
            t_cmp,
            t_com,
        } => {
            members.push(("session".into(), json::string(session)));
            members.push(("seq".into(), seq.to_string()));
            members.push(("t_cmp".into(), json::number(*t_cmp)));
            members.push(("t_com".into(), json::number(*t_com)));
        }
        Request::Bid { session, seq, bid } | Request::Submit { session, seq, bid } => {
            members.push(("session".into(), json::string(session)));
            members.push(("seq".into(), seq.to_string()));
            members.push(("client".into(), bid.client.to_string()));
            members.push(("price".into(), json::number(bid.price)));
            members.push(("theta".into(), json::number(bid.theta)));
            members.push(("a".into(), bid.a.to_string()));
            members.push(("d".into(), bid.d.to_string()));
            members.push(("c".into(), bid.c.to_string()));
        }
        Request::Close { session, seq } => {
            members.push(("session".into(), json::string(session)));
            members.push(("seq".into(), seq.to_string()));
        }
        Request::Outcome { session } => {
            members.push(("session".into(), json::string(session)));
        }
        Request::Payment { session, client } => {
            members.push(("session".into(), json::string(session)));
            members.push(("client".into(), client.to_string()));
        }
    }
    json::object(&members)
}

/// The wire discriminator of a request — also the suffix of the daemon's
/// per-command `service.cmd.<op>` latency histograms.
pub fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Ping => "ping",
        Request::Stats => "stats",
        Request::Health => "health",
        Request::Flight => "flight",
        Request::Shutdown => "shutdown",
        Request::Open(_) => "open",
        Request::Client { .. } => "client",
        Request::Bid { .. } => "bid",
        Request::Submit { .. } => "submit",
        Request::Close { .. } => "close",
        Request::Outcome { .. } => "outcome",
        Request::Payment { .. } => "payment",
    }
}

/// Serialises an error response (without an id; see [`with_id`]).
pub fn error_response(err: &ServiceError) -> String {
    json::object(&[
        ("ok".into(), "false".into()),
        ("code".into(), json::string(err.code.as_str())),
        ("retryable".into(), err.retryable().to_string()),
        ("detail".into(), json::string(&err.detail)),
    ])
}

/// Splices the echo id into an already-serialised response object. The
/// daemon stores per-seq replay responses *without* ids, then stamps the
/// current request's id on the way out, so a retry with a fresh id still
/// matches at the client.
pub fn with_id(resp: &str, id: Option<u64>) -> String {
    match id {
        None => resp.to_string(),
        Some(id) => {
            debug_assert!(resp.starts_with('{') && resp.len() > 2);
            format!("{{\"id\":{id},{}", &resp[1..])
        }
    }
}

/// Splices the echo id *and* trace id into an already-serialised
/// response object — the trace-aware [`with_id`]. Replay responses are
/// stored bare, so a retried request gets its own current meta stamped.
pub fn with_meta(resp: &str, meta: &ReqMeta) -> String {
    let resp = match &meta.trace {
        None => return with_id(resp, meta.id),
        Some(trace) => {
            debug_assert!(resp.starts_with('{') && resp.len() > 2);
            format!("{{\"trace\":{},{}", json::string(trace), &resp[1..])
        }
    };
    with_id(&resp, meta.id)
}

/// Reads an error response back into [`ServiceError`], if the document
/// is one (`"ok": false`).
pub fn error_from_value(doc: &Json) -> Option<ServiceError> {
    if doc.get("ok").and_then(Json::as_bool) == Some(false) {
        let code = doc
            .get("code")
            .and_then(Json::as_str)
            .and_then(ErrCode::parse_str)
            .unwrap_or(ErrCode::Internal);
        let detail = doc
            .get("detail")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        Some(ServiceError { code, detail })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Health,
            Request::Flight,
            Request::Open(OpenParams::new(7, 6, 2, 60.0)),
            Request::Client {
                session: "s-1".into(),
                seq: 1,
                t_cmp: 2.5,
                t_com: 5.0,
            },
            Request::Bid {
                session: "s-1".into(),
                seq: 2,
                bid: BidParams {
                    client: 0,
                    price: 3.25,
                    theta: 0.55,
                    a: 1,
                    d: 6,
                    c: 6,
                },
            },
            Request::Submit {
                session: "s-2".into(),
                seq: 1,
                bid: BidParams {
                    client: 1,
                    price: 2.0,
                    theta: 0.6,
                    a: 2,
                    d: 5,
                    c: 3,
                },
            },
            Request::Open(OpenParams::streaming(8, 6, 2, 60.0, 120.0)),
            Request::Close {
                session: "s-1".into(),
                seq: 3,
            },
            Request::Outcome {
                session: "s-1".into(),
            },
            Request::Payment {
                session: "s-1".into(),
                client: 0,
            },
        ];
        for (i, req) in reqs.iter().enumerate() {
            let text = request_to_json(i as u64, req);
            let (meta, back) = parse_request(&text).unwrap();
            assert_eq!(meta.id, Some(i as u64), "{text}");
            assert_eq!(meta.trace, None, "{text}");
            assert_eq!(&back, req, "{text}");
        }
    }

    #[test]
    fn trace_ids_round_trip_and_splice() {
        let text = request_with_trace(9, Some("c-7-3"), &Request::Ping);
        let (meta, req) = parse_request(&text).unwrap();
        assert_eq!(meta.id, Some(9));
        assert_eq!(meta.trace.as_deref(), Some("c-7-3"));
        assert_eq!(req, Request::Ping);

        let stamped = with_meta(r#"{"ok":true}"#, &meta);
        let doc = json::parse(&stamped).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(9));
        assert_eq!(doc.get("trace").and_then(Json::as_str), Some("c-7-3"));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));

        // No trace ⇒ byte-identical to the id-only splice.
        let meta = ReqMeta::with_id(4);
        assert_eq!(
            with_meta(r#"{"ok":true}"#, &meta),
            with_id(r#"{"ok":true}"#, Some(4))
        );
    }

    #[test]
    fn open_defaults_apply() {
        let (_, req) = parse_request(r#"{"op":"open","nonce":1,"t":5,"k":2,"t_max":30}"#).unwrap();
        match req {
            Request::Open(p) => {
                assert_eq!(p.model, "linear");
                assert_eq!(p.qualify, "intent");
                assert_eq!(p.threads, DEFAULT_THREADS);
                assert_eq!(p.budget, None, "no budget member means batch mode");
                p.to_config().unwrap();
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn open_with_budget_parses_as_streaming() {
        let (_, req) =
            parse_request(r#"{"op":"open","nonce":1,"t":5,"k":2,"t_max":30,"budget":42.5}"#)
                .unwrap();
        match req {
            Request::Open(p) => assert_eq!(p.budget, Some(42.5)),
            other => panic!("{other:?}"),
        }
        // A mistyped budget is a parse error, not a silent batch session.
        let err =
            parse_request(r#"{"op":"open","nonce":1,"t":5,"k":2,"t_max":30,"budget":"lots"}"#)
                .unwrap_err();
        assert_eq!(err.code, ErrCode::BadRequest);
    }

    #[test]
    fn malformed_requests_are_bad_request_not_panic() {
        for bad in [
            "@garbage",
            "{}",
            r#"{"op":"warp"}"#,
            r#"{"op":"bid","session":"s-1"}"#,
            r#"{"op":"open","nonce":1,"t":-4,"k":2,"t_max":30}"#,
            r#"{"op":"client","session":"s-1","seq":1,"t_cmp":"x","t_com":1}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.code, ErrCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn bad_config_names_are_rejected() {
        let mut p = OpenParams::new(1, 5, 2, 30.0);
        p.model = "quadratic".into();
        assert_eq!(p.to_config().unwrap_err().code, ErrCode::BadRequest);
        let mut p = OpenParams::new(1, 5, 2, 30.0);
        p.qualify = "vibes".into();
        assert_eq!(p.to_config().unwrap_err().code, ErrCode::BadRequest);
    }

    #[test]
    fn id_splice_produces_valid_json() {
        let resp = error_response(&ServiceError::new(ErrCode::Overloaded, "full"));
        let stamped = with_id(&resp, Some(42));
        let doc = json::parse(&stamped).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(42));
        let err = error_from_value(&doc).unwrap();
        assert_eq!(err.code, ErrCode::Overloaded);
        assert!(err.retryable());
    }
}

//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes how the daemon should misbehave: drop,
//! delay or duplicate response frames on the wire, and/or die at a
//! chosen journal append with a partially-written record ([`CrashPoint`]
//! from the journal layer). Wire faults draw from a seeded RNG per
//! connection, so a `(plan, connection order)` pair replays the same
//! fault sequence — the chaos matrix depends on this to be debuggable.
//!
//! Plans come from the `FLPD_FAULTS` environment variable (for the
//! `flpd` bin) or are constructed programmatically (chaos harness):
//!
//! ```text
//! FLPD_FAULTS="seed=42,drop=0.2,delay=0.3:5,dup=0.1,crash=bid:3:0.5"
//! ```
//!
//! * `seed=<u64>` — RNG seed (default 0);
//! * `drop=<p>` — drop each response with probability `p`;
//! * `delay=<p>:<ms>` — delay each response by `ms` with probability `p`;
//! * `dup=<p>` — send each response twice with probability `p`;
//! * `crash=<kind>:<nth>[:<cut>]` — die appending the `nth` journal
//!   record of `kind`
//!   (`open|client|bid|decision|close_begin|close_commit`),
//!   having physically written `cut in [0, 1]` of it (default 0.5);
//! * `jam=<kind>:<nth>` — fail (without dying) the `nth` journal append
//!   of `kind` with a plain I/O error, exercising the `internal` error
//!   path: the record is not written and the journal poisons.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::journal::{CrashPoint, JamPoint, RecordKind};

/// Environment variable the `flpd` bin reads a plan from.
pub const FAULTS_ENV: &str = "FLPD_FAULTS";

/// A complete fault schedule for one daemon lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the wire-fault RNG.
    pub seed: u64,
    /// Probability of dropping a response frame.
    pub drop_resp: f64,
    /// `(probability, milliseconds)` of delaying a response frame.
    pub delay: Option<(f64, u64)>,
    /// Probability of duplicating a response frame.
    pub dup_resp: f64,
    /// At most one injected death per daemon lifetime.
    pub crash: Option<CrashPoint>,
    /// At most one injected non-fatal journal write failure.
    pub jam: Option<JamPoint>,
}

impl FaultPlan {
    /// Whether the plan perturbs the wire at all.
    pub fn has_wire_faults(&self) -> bool {
        self.drop_resp > 0.0 || self.dup_resp > 0.0 || self.delay.is_some()
    }

    /// The plan with the crash point removed — what a restarted daemon
    /// runs under (the "process" already died once).
    pub fn after_crash(mut self) -> FaultPlan {
        self.crash = None;
        self
    }

    /// Parses the `FLPD_FAULTS` syntax.
    ///
    /// # Errors
    ///
    /// Names the first malformed clause.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in text.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause {clause:?} is not key=value"))?;
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "drop" => plan.drop_resp = parse_prob(value)?,
                "dup" => plan.dup_resp = parse_prob(value)?,
                "delay" => {
                    let (p, ms) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay needs p:ms, got {value:?}"))?;
                    let ms = ms.parse().map_err(|_| format!("bad delay ms {ms:?}"))?;
                    plan.delay = Some((parse_prob(p)?, ms));
                }
                "crash" => {
                    let mut parts = value.split(':');
                    let kind = parts.next().unwrap_or("");
                    let kind = RecordKind::parse_str(kind)
                        .ok_or_else(|| format!("unknown record kind {kind:?}"))?;
                    let nth = parts
                        .next()
                        .ok_or_else(|| "crash needs kind:nth".to_string())?
                        .parse()
                        .map_err(|_| "bad crash nth".to_string())?;
                    let cut = match parts.next() {
                        None => 0.5,
                        Some(c) => parse_prob(c)?,
                    };
                    plan.crash = Some(CrashPoint { kind, nth, cut });
                }
                "jam" => {
                    let (kind, nth) = value
                        .split_once(':')
                        .ok_or_else(|| format!("jam needs kind:nth, got {value:?}"))?;
                    let kind = RecordKind::parse_str(kind)
                        .ok_or_else(|| format!("unknown record kind {kind:?}"))?;
                    let nth = nth.parse().map_err(|_| "bad jam nth".to_string())?;
                    plan.jam = Some(JamPoint { kind, nth });
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Reads the plan from [`FAULTS_ENV`]; `Ok(None)` when unset.
    ///
    /// # Errors
    ///
    /// Propagates parse failures so typos do not silently run fault-free.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(text) if !text.trim().is_empty() => FaultPlan::parse(&text).map(Some),
            _ => Ok(None),
        }
    }
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|_| format!("bad probability {s:?}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {p} outside [0,1]"));
    }
    Ok(p)
}

/// What to do with one response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAction {
    /// Send it once, immediately.
    Send,
    /// Do not send it at all.
    Drop,
    /// Sleep this many milliseconds, then send.
    DelayMs(u64),
    /// Send it twice back to back.
    Duplicate,
}

/// Per-connection wire-fault dice, seeded from `(plan.seed, conn_index)`.
#[derive(Debug)]
pub struct WireDice {
    plan: FaultPlan,
    rng: StdRng,
}

impl WireDice {
    /// Dice for connection number `conn` under `plan`.
    pub fn new(plan: FaultPlan, conn: u64) -> WireDice {
        WireDice {
            plan,
            rng: StdRng::seed_from_u64(plan.seed.wrapping_mul(0x9e37_79b9).wrapping_add(conn)),
        }
    }

    /// Rolls the fate of the next response frame. Faults are exclusive,
    /// checked in drop → delay → dup order.
    pub fn roll(&mut self) -> WireAction {
        if self.plan.drop_resp > 0.0 && self.rng.next_f64() < self.plan.drop_resp {
            return WireAction::Drop;
        }
        if let Some((p, ms)) = self.plan.delay {
            if p > 0.0 && self.rng.next_f64() < p {
                return WireAction::DelayMs(ms);
            }
        }
        if self.plan.dup_resp > 0.0 && self.rng.next_f64() < self.plan.dup_resp {
            return WireAction::Duplicate;
        }
        WireAction::Send
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_syntax_parses() {
        let plan =
            FaultPlan::parse("seed=42, drop=0.2, delay=0.3:5, dup=0.1, crash=bid:3:0.5").unwrap();
        assert_eq!(plan.seed, 42);
        assert!((plan.drop_resp - 0.2).abs() < 1e-12);
        assert_eq!(plan.delay, Some((0.3, 5)));
        assert!((plan.dup_resp - 0.1).abs() < 1e-12);
        let cp = plan.crash.unwrap();
        assert_eq!(cp.kind, RecordKind::Bid);
        assert_eq!(cp.nth, 3);
        assert!((cp.cut - 0.5).abs() < 1e-12);
        assert!(plan.has_wire_faults());
    }

    #[test]
    fn crash_cut_defaults_to_half() {
        let plan = FaultPlan::parse("crash=close_commit:1").unwrap();
        assert!((plan.crash.unwrap().cut - 0.5).abs() < 1e-12);
        assert!(!plan.has_wire_faults());
    }

    #[test]
    fn crash_clause_targets_streaming_decisions() {
        let plan = FaultPlan::parse("crash=decision:4:0.25").unwrap();
        let cp = plan.crash.unwrap();
        assert_eq!(cp.kind, RecordKind::Decision);
        assert_eq!(cp.nth, 4);
        assert!((cp.cut - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jam_clause_parses() {
        let plan = FaultPlan::parse("jam=bid:2").unwrap();
        let jam = plan.jam.unwrap();
        assert_eq!(jam.kind, RecordKind::Bid);
        assert_eq!(jam.nth, 2);
        assert!(!plan.has_wire_faults());
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "drop",
            "drop=1.5",
            "delay=0.5",
            "crash=warp:1",
            "crash=bid:x",
            "jam=bid",
            "jam=warp:1",
            "wat=1",
            "seed=minus",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn empty_plan_is_fault_free() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::default());
        let mut dice = WireDice::new(plan, 0);
        for _ in 0..100 {
            assert_eq!(dice.roll(), WireAction::Send);
        }
    }

    #[test]
    fn dice_are_deterministic_per_seed_and_connection() {
        let plan = FaultPlan::parse("seed=9,drop=0.3,dup=0.3").unwrap();
        let rolls = |conn| {
            let mut dice = WireDice::new(plan, conn);
            (0..64).map(|_| dice.roll()).collect::<Vec<_>>()
        };
        assert_eq!(rolls(1), rolls(1));
        assert_ne!(rolls(1), rolls(2));
        assert!(rolls(1).contains(&WireAction::Drop));
    }

    #[test]
    fn after_crash_strips_only_the_crash() {
        let plan = FaultPlan::parse("drop=0.2,crash=bid:1").unwrap();
        let restarted = plan.after_crash();
        assert_eq!(restarted.crash, None);
        assert!((restarted.drop_resp - 0.2).abs() < 1e-12);
    }
}

//! The TCP daemon: listener, per-connection deadlines, load shedding,
//! and the wire-fault seam.
//!
//! Threading model is deliberately boring — one thread per connection,
//! bounded by `max_conns`; a connection above the bound is *shed*: it
//! receives one `overloaded` (retryable) error frame and is closed, so
//! overload turns into fast explicit backpressure instead of unbounded
//! queueing. Read/write deadlines bound every blocking call; an idle or
//! stalled peer is disconnected after `io_timeout`, never parked
//! forever.
//!
//! An injected crash (see [`crate::journal::CrashPoint`]) makes the
//! whole daemon behave like a killed process: every connection drops
//! without a response and the acceptor exits. [`Daemon::crashed`] lets a
//! supervisor (the chaos harness) observe the death and restart from the
//! journal.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fl_telemetry::frame::{self, FrameError};

use crate::error::{ErrCode, ServiceError};
use crate::faults::{FaultPlan, WireAction, WireDice};
use crate::journal::Durability;
use crate::session::{HandleResult, Limits, RecoveryReport, ServerCore};
use crate::wire;

/// Everything a daemon needs to start.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Write-ahead journal path (created if absent, recovered if not).
    pub journal: PathBuf,
    /// Journal durability mode.
    pub durability: Durability,
    /// Session and close-concurrency limits.
    pub limits: Limits,
    /// Maximum request frame size in bytes.
    pub max_frame: usize,
    /// Per-connection read/write deadline.
    pub io_timeout: Duration,
    /// Connection cap; connections beyond it are shed.
    pub max_conns: usize,
    /// Fault-injection plan, if any.
    pub faults: Option<FaultPlan>,
    /// Where automatic flight-recorder dumps land (`None` disables
    /// them). The daemon dumps once at startup when recovery had to
    /// repair anything, and once when sheds first cross
    /// [`SHED_STORM_THRESHOLD`].
    pub dump_dir: Option<PathBuf>,
}

impl DaemonConfig {
    /// Defaults: loopback on an ephemeral port, strict durability, 64
    /// KiB frames, 2 s deadlines, 64 connections.
    pub fn new(journal: PathBuf) -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            journal,
            durability: Durability::Strict,
            limits: Limits::default(),
            max_frame: 64 << 10,
            io_timeout: Duration::from_secs(2),
            max_conns: 64,
            faults: None,
            dump_dir: None,
        }
    }
}

/// Shed count at which the daemon considers itself inside a shed storm
/// and writes one automatic flight dump (if a dump dir is configured).
pub const SHED_STORM_THRESHOLD: u64 = 8;

/// A running daemon.
pub struct Daemon {
    addr: SocketAddr,
    core: Arc<ServerCore>,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    shed: Arc<AtomicU64>,
    recovery: RecoveryReport,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("addr", &self.addr)
            .field("crashed", &self.crashed())
            .finish_non_exhaustive()
    }
}

impl Daemon {
    /// Recovers the journal, binds the listener, and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates journal and bind failures.
    pub fn start(cfg: DaemonConfig) -> io::Result<Daemon> {
        let (core, recovery) =
            ServerCore::recover(&cfg.journal, cfg.durability, cfg.faults, cfg.limits)?;
        let core = Arc::new(core);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        if recovery.replayed_closes > 0 || recovery.truncated_bytes > 0 || recovery.anomalies > 0 {
            dump_flight(&core, cfg.dump_dir.as_deref(), "recovery", addr.port());
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let shed = Arc::new(AtomicU64::new(0));

        let accept = {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            let shed = Arc::clone(&shed);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("flpd-accept".into())
                .spawn(move || accept_loop(listener, addr, core, shutdown, shed, cfg))?
        };
        Ok(Daemon {
            addr,
            core,
            shutdown,
            accept: Some(accept),
            shed,
            recovery,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What journal recovery found at startup.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Connections shed at the accept gate so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Whether an injected crash has killed the daemon.
    pub fn crashed(&self) -> bool {
        self.core.crashed()
    }

    /// Whether shutdown has begun (crash or a client `shutdown` request).
    pub fn stopped(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Begins shutdown and waits for the acceptor to exit. Live
    /// connections die within one `io_timeout`.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Nudges a blocking `accept` so it re-checks the shutdown flag.
fn wake(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

#[allow(clippy::needless_pass_by_value)]
fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    core: Arc<ServerCore>,
    shutdown: Arc<AtomicBool>,
    shed: Arc<AtomicU64>,
    cfg: DaemonConfig,
) {
    let live = Arc::new(AtomicUsize::new(0));
    let mut conn_no: u64 = 0;
    loop {
        if shutdown.load(Ordering::SeqCst) || core.crashed() {
            return;
        }
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) || core.crashed() {
            return;
        }
        conn_no += 1;
        if live.load(Ordering::SeqCst) >= cfg.max_conns {
            shed.fetch_add(1, Ordering::Relaxed);
            core.note_shed();
            if core.shed_count() == SHED_STORM_THRESHOLD {
                dump_flight(&core, cfg.dump_dir.as_deref(), "shed-storm", addr.port());
            }
            shed_connection(stream, cfg.io_timeout, cfg.max_conns);
            continue;
        }
        live.fetch_add(1, Ordering::SeqCst);
        let conn_core = Arc::clone(&core);
        let shutdown = Arc::clone(&shutdown);
        let live_conn = Arc::clone(&live);
        let dice = cfg
            .faults
            .filter(FaultPlan::has_wire_faults)
            .map(|plan| WireDice::new(plan, conn_no));
        let cfg = cfg.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("flpd-conn-{conn_no}"))
            .spawn(move || {
                serve_conn(stream, &conn_core, dice, &cfg, &shutdown, addr);
                live_conn.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // Could not spawn: count it as shed; `live` was already
            // incremented, undo it.
            live.fetch_sub(1, Ordering::SeqCst);
            shed.fetch_add(1, Ordering::Relaxed);
            core.note_shed();
        }
    }
}

/// Load shedding: one retryable error frame, then close.
fn shed_connection(mut stream: TcpStream, io_timeout: Duration, cap: usize) {
    let _ = stream.set_write_timeout(Some(io_timeout));
    let err = ServiceError::new(
        ErrCode::Overloaded,
        format!("connection capacity {cap} reached"),
    );
    let _ = frame::write_frame(&mut stream, &wire::error_response(&err));
    let _ = stream.flush();
}

fn serve_conn(
    stream: TcpStream,
    core: &ServerCore,
    mut dice: Option<WireDice>,
    cfg: &DaemonConfig,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    if stream.set_read_timeout(Some(cfg.io_timeout)).is_err()
        || stream.set_write_timeout(Some(cfg.io_timeout)).is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.load(Ordering::SeqCst) || core.crashed() {
            return;
        }
        match frame::read_frame(&mut reader, cfg.max_frame) {
            Ok(None) => return,
            Ok(Some(payload)) => match core.handle(&payload) {
                HandleResult::Reply(resp) => {
                    if !send(&mut writer, &resp, &mut dice) {
                        return;
                    }
                }
                HandleResult::Crashed => {
                    // Simulated process death: no response, wake the
                    // acceptor so it observes the crash flag.
                    shutdown.store(true, Ordering::SeqCst);
                    wake(addr);
                    return;
                }
                HandleResult::ShutdownRequested(resp) => {
                    let _ = frame::write_frame(&mut writer, &resp);
                    let _ = writer.flush();
                    shutdown.store(true, Ordering::SeqCst);
                    wake(addr);
                    return;
                }
            },
            Err(e) => {
                respond_to_frame_error(&mut writer, core, &e);
                return;
            }
        }
    }
}

/// Best-effort error frame for a broken request stream; the connection
/// closes either way because framing is lost.
fn respond_to_frame_error(writer: &mut TcpStream, core: &ServerCore, e: &FrameError) {
    let err = match e {
        // Deadline expiry (idle or stalled peer) — just disconnect,
        // but account the lost connection in the stats plane.
        FrameError::Io(io_err) => {
            if matches!(
                io_err.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) {
                core.note_wire_err(ErrCode::Deadline, "connection idle deadline expired");
            }
            return;
        }
        FrameError::TooLarge { declared, cap } => {
            core.note_wire_err(ErrCode::TooLarge, "request frame exceeds cap");
            ServiceError::new(
                ErrCode::TooLarge,
                format!("frame of {declared} bytes exceeds cap {cap}"),
            )
        }
        other => {
            core.note_wire_err(ErrCode::BadRequest, "malformed frame");
            ServiceError::new(ErrCode::BadRequest, format!("malformed frame: {other}"))
        }
    };
    let _ = frame::write_frame(writer, &wire::error_response(&err));
    let _ = writer.flush();
}

/// Writes the flight recorder to `<dir>/flight-<tag>-<port>.json`.
/// Best-effort on purpose: observability must never take the daemon
/// down, so directory or write failures are swallowed.
fn dump_flight(core: &ServerCore, dir: Option<&std::path::Path>, tag: &str, port: u16) {
    let Some(dir) = dir else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(
        dir.join(format!("flight-{tag}-{port}.json")),
        core.flight().dump_json(),
    );
}

/// Writes one response, applying the wire-fault dice. Returns `false`
/// when the connection is no longer usable.
fn send(writer: &mut TcpStream, resp: &str, dice: &mut Option<WireDice>) -> bool {
    let action = dice.as_mut().map_or(WireAction::Send, WireDice::roll);
    match action {
        WireAction::Drop => true,
        WireAction::Send => frame::write_frame(writer, resp).is_ok(),
        WireAction::DelayMs(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            frame::write_frame(writer, resp).is_ok()
        }
        WireAction::Duplicate => {
            frame::write_frame(writer, resp).is_ok() && frame::write_frame(writer, resp).is_ok()
        }
    }
}

//! The retrying flpd client.
//!
//! Network faults and load shedding are normal operation for the
//! daemon, so the client owns the recovery loop: every call retries on
//! *retryable* service errors (`overloaded`, `backlog`, `deadline`) and
//! on transport failures (timeouts, resets, refused connections) with
//! jittered exponential backoff, up to a per-call attempt budget. Fatal
//! service errors (`bad_request`, `conflict`, …) return immediately —
//! resending them can never help.
//!
//! Retries are safe because every mutating request carries a session
//! `seq` the daemon deduplicates on, and `open` carries a `nonce`; the
//! client manages both, so callers just see at-most-once semantics.
//! Responses are matched to requests by the echoed `id`; stale frames (a
//! duplicated or very late response) are discarded, and an error frame
//! without an id (the accept-gate shed path) applies to the in-flight
//! request.
//!
//! Every logical call also carries a client-generated trace id, reused
//! verbatim across that call's retries. The daemon stamps the trace on
//! its spans, flight-recorder events and journal records, so one trace
//! names one caller operation end to end — including all its retried
//! attempts.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use fl_auction::{serial, AuctionOutcome};
use fl_telemetry::frame;
use fl_telemetry::json::{self, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ServiceError;
use crate::wire::{self, BidParams, OpenParams, Request};

/// Retry and deadline policy for a client.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-read/write deadline.
    pub io_timeout: Duration,
    /// Total attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// First backoff sleep; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for backoff jitter (deterministic tests).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(2),
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0,
        }
    }
}

/// How a call ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// The daemon answered with a fatal error.
    Service(ServiceError),
    /// The retry budget ran out; carries the last transport or
    /// retryable-service failure seen.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the final failure.
        last: String,
    },
    /// The daemon answered with something the protocol does not allow.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Service(e) => write!(f, "service error: {e}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// The daemon's decision for a closed epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum CloseReply {
    /// The auction solved; full outcome attached.
    Committed(AuctionOutcome),
    /// The epoch was explicitly aborted.
    Aborted(String),
}

/// The daemon's irrevocable on-arrival verdict for one streamed bid.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReply {
    /// Bid index within the owning client.
    pub bid: u32,
    /// Whether the bid was committed (hired at the posted offer).
    pub committed: bool,
    /// Machine-readable reason (`committed`, `unqualified`, …).
    pub reason: String,
    /// Payment owed if committed; `0` otherwise.
    pub payment: f64,
    /// Whether this was a re-submission replaying an earlier verdict.
    pub duplicate: bool,
}

/// Payments owed to one client of a closed epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum PaymentReply {
    /// Committed epoch: total and per-bid payments.
    Committed {
        /// Sum over the client's winning bids.
        total: f64,
        /// `(bid index, payment)` pairs.
        per_bid: Vec<(u32, f64)>,
    },
    /// The epoch was aborted; nobody is paid.
    Aborted(String),
}

/// Response frames tolerated before declaring an attempt lost (guards
/// against a pathological stream of stale duplicates).
const MAX_STALE_FRAMES: u32 = 16;

/// Response frame size cap (outcomes scale with winner count).
const MAX_RESPONSE: usize = 4 << 20;

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A connection to one daemon, with retry state.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<Conn>,
    rng: StdRng,
    next_id: u64,
    next_nonce: u64,
    next_trace: u64,
    seqs: HashMap<String, u64>,
    retries: u64,
}

impl Client {
    /// A client for the daemon at `addr` (connects lazily).
    pub fn new(addr: SocketAddr, cfg: ClientConfig) -> Client {
        Client {
            addr,
            cfg,
            conn: None,
            rng: StdRng::seed_from_u64(cfg.seed),
            next_id: 0,
            // Nonces must be distinct per *client lifetime*; derive the
            // space from the seed so parallel clients do not collide.
            // Masked to 52 bits: the wire layer rejects integers beyond
            // 2^53 (the JSON float-interop bound), and the counter needs
            // headroom above the base.
            next_nonce: cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) & ((1 << 52) - 1),
            next_trace: 0,
            seqs: HashMap::new(),
            retries: 0,
        }
    }

    /// Retried attempts performed so far (observability for loadgen).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Transfers per-session idempotency state from a prior client
    /// incarnation — the same logical caller reconnecting after a
    /// daemon restart. Retried operations then keep their original
    /// `seq`, which the daemon deduplicates on.
    pub fn adopt_sessions(&mut self, prior: &Client) {
        for (session, seq) in &prior.seqs {
            self.seqs.insert(session.clone(), *seq);
        }
    }

    /// Rewinds `session`'s seq counter by one so the next mutating call
    /// reuses the seq of an operation whose fate is unknown (the daemon
    /// died mid-call). The retry then either applies fresh — the record
    /// never became durable — or replays the stored response; it can
    /// never double-apply.
    pub fn rewind_seq(&mut self, session: &str) {
        if let Some(seq) = self.seqs.get_mut(session) {
            *seq = seq.saturating_sub(1);
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(Request::Ping).map(|_| ())
    }

    /// Daemon counters: `(sessions, closed)`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats(&mut self) -> Result<(u64, u64), ClientError> {
        let doc = self.call(Request::Stats)?;
        Ok((field_u64(&doc, "sessions")?, field_u64(&doc, "closed")?))
    }

    /// The full `stats` document: session/FSM census, shed count, and
    /// the merged live-metrics snapshot (per-command latency quantiles,
    /// error counters, journal fsync latency).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats_doc(&mut self) -> Result<Json, ClientError> {
        self.call(Request::Stats)
    }

    /// Cheap liveness and overload probe (`status` is `"ok"` or
    /// `"overloaded"`); never touches the journal or session table
    /// beyond two counter reads.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.call(Request::Health)
    }

    /// The daemon's flight-recorder dump: recent events across all
    /// service threads, causally ordered.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn flight(&mut self) -> Result<Json, ClientError> {
        self.call(Request::Flight)
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Request::Shutdown).map(|_| ())
    }

    /// Opens a session (idempotent: the nonce is chosen once per call).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn open(&mut self, mut params: OpenParams) -> Result<String, ClientError> {
        if params.nonce == 0 {
            self.next_nonce = self.next_nonce.wrapping_add(1);
            params.nonce = self.next_nonce;
        }
        let doc = self.call(Request::Open(params))?;
        let session = doc
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("open reply without session".into()))?
            .to_string();
        self.seqs.entry(session.clone()).or_insert(0);
        Ok(session)
    }

    /// Registers a client profile; returns its index.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn add_client(
        &mut self,
        session: &str,
        t_cmp: f64,
        t_com: f64,
    ) -> Result<u32, ClientError> {
        let seq = self.next_seq(session);
        let doc = self.call(Request::Client {
            session: session.into(),
            seq,
            t_cmp,
            t_com,
        })?;
        field_u64(&doc, "client").map(|v| v as u32)
    }

    /// Submits a bid; returns its index within the owning client.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn add_bid(&mut self, session: &str, bid: BidParams) -> Result<u32, ClientError> {
        let seq = self.next_seq(session);
        let doc = self.call(Request::Bid {
            session: session.into(),
            seq,
            bid,
        })?;
        field_u64(&doc, "bid").map(|v| v as u32)
    }

    /// Streams a bid into an online (budgeted) session; the daemon
    /// decides commit-or-reject on arrival, irrevocably.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn submit(&mut self, session: &str, bid: BidParams) -> Result<SubmitReply, ClientError> {
        let seq = self.next_seq(session);
        let doc = self.call(Request::Submit {
            session: session.into(),
            seq,
            bid,
        })?;
        let field_bool = |key: &str| {
            doc.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Protocol(format!("submit reply without {key:?}")))
        };
        Ok(SubmitReply {
            bid: field_u64(&doc, "bid")? as u32,
            committed: field_bool("committed")?,
            reason: doc
                .get("reason")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("submit reply without reason".into()))?
                .to_string(),
            payment: doc
                .get("payment")
                .and_then(Json::as_f64)
                .ok_or_else(|| ClientError::Protocol("submit reply without payment".into()))?,
            duplicate: field_bool("duplicate")?,
        })
    }

    /// Closes the epoch: runs the auction and returns the decision.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn close(&mut self, session: &str) -> Result<CloseReply, ClientError> {
        let seq = self.next_seq(session);
        let doc = self.call(Request::Close {
            session: session.into(),
            seq,
        })?;
        parse_close_reply(&doc)
    }

    /// Queries the decision of an already-closed epoch.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn outcome(&mut self, session: &str) -> Result<CloseReply, ClientError> {
        let doc = self.call(Request::Outcome {
            session: session.into(),
        })?;
        parse_close_reply(&doc)
    }

    /// Queries one client's payments in a closed epoch.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn payments(&mut self, session: &str, client: u32) -> Result<PaymentReply, ClientError> {
        let doc = self.call(Request::Payment {
            session: session.into(),
            client,
        })?;
        match doc.get("status").and_then(Json::as_str) {
            Some("committed") => {
                let per_bid = doc
                    .get("payments")
                    .and_then(Json::as_array)
                    .ok_or_else(|| ClientError::Protocol("payment reply without list".into()))?
                    .iter()
                    .map(|entry| {
                        let bid = entry.get("bid").and_then(Json::as_u64)? as u32;
                        let payment = entry.get("payment").and_then(Json::as_f64)?;
                        Some((bid, payment))
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| ClientError::Protocol("malformed payment entry".into()))?;
                let total = doc
                    .get("total")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ClientError::Protocol("payment reply without total".into()))?;
                Ok(PaymentReply::Committed { total, per_bid })
            }
            Some("aborted") => Ok(PaymentReply::Aborted(
                doc.get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            )),
            other => Err(ClientError::Protocol(format!(
                "payment reply with status {other:?}"
            ))),
        }
    }

    fn next_seq(&mut self, session: &str) -> u64 {
        let seq = self.seqs.entry(session.to_string()).or_insert(0);
        *seq += 1;
        *seq
    }

    /// The retry loop around one request. The trace id is chosen once
    /// here, so all retried attempts of a logical call share it.
    fn call(&mut self, req: Request) -> Result<Json, ClientError> {
        self.next_trace += 1;
        let trace = format!("cli-{}-{}", self.cfg.seed, self.next_trace);
        let mut last = String::from("never attempted");
        for attempt in 1..=self.cfg.max_attempts.max(1) {
            if attempt > 1 {
                self.retries += 1;
                self.backoff(attempt);
            }
            self.next_id += 1;
            let id = self.next_id;
            match self.attempt(id, &trace, &req) {
                Ok(doc) => {
                    if let Some(err) = wire::error_from_value(&doc) {
                        if err.retryable() {
                            last = err.to_string();
                            continue;
                        }
                        return Err(ClientError::Service(err));
                    }
                    return Ok(doc);
                }
                Err(why) => {
                    last = why;
                    // Transport failure: the stream may be desynced.
                    self.conn = None;
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.cfg.max_attempts.max(1),
            last,
        })
    }

    /// Jittered exponential backoff: `base·2^(attempt-2)`, capped, then
    /// scaled by a uniform [0.5, 1.0) draw so synchronized clients
    /// desynchronize.
    fn backoff(&mut self, attempt: u32) {
        let exp = attempt.saturating_sub(2).min(16);
        let raw = self.cfg.base_backoff.saturating_mul(1 << exp);
        let capped = raw.min(self.cfg.max_backoff);
        let jitter = 0.5 + self.rng.next_f64() * 0.5;
        std::thread::sleep(capped.mul_f64(jitter));
    }

    /// One wire exchange; errors are strings because they are all
    /// retryable transport conditions.
    fn attempt(&mut self, id: u64, trace: &str, req: &Request) -> Result<Json, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)
                .map_err(|e| format!("connect: {e}"))?;
            stream
                .set_read_timeout(Some(self.cfg.io_timeout))
                .map_err(|e| format!("set deadline: {e}"))?;
            stream
                .set_write_timeout(Some(self.cfg.io_timeout))
                .map_err(|e| format!("set deadline: {e}"))?;
            let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
            self.conn = Some(Conn {
                reader: BufReader::new(stream),
                writer,
            });
        }
        let conn = self.conn.as_mut().expect("just connected");
        let text = wire::request_with_trace(id, Some(trace), req);
        frame::write_frame(&mut conn.writer, &text).map_err(|e| format!("send: {e}"))?;
        conn.writer.flush().map_err(|e| format!("flush: {e}"))?;
        for _ in 0..MAX_STALE_FRAMES {
            let payload = match frame::read_frame(&mut conn.reader, MAX_RESPONSE) {
                Ok(Some(p)) => p,
                Ok(None) => return Err("connection closed by daemon".into()),
                Err(e) => return Err(format!("recv: {e}")),
            };
            let doc = json::parse(&payload).map_err(|e| format!("bad response JSON: {e}"))?;
            match doc.get("id").and_then(Json::as_u64) {
                Some(resp_id) if resp_id == id => return Ok(doc),
                // Stale response (duplicate or late): discard and keep
                // reading.
                Some(_) => continue,
                // No id: an accept-gate shed or frame-level error frame,
                // which applies to whatever is in flight — us.
                None => return Ok(doc),
            }
        }
        Err(format!("gave up after {MAX_STALE_FRAMES} stale frames"))
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("retries", &self.retries)
            .finish_non_exhaustive()
    }
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, ClientError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("reply without {key:?}")))
}

fn parse_close_reply(doc: &Json) -> Result<CloseReply, ClientError> {
    match doc.get("status").and_then(Json::as_str) {
        Some("committed") => {
            let outcome = doc
                .get("outcome")
                .ok_or_else(|| ClientError::Protocol("committed reply without outcome".into()))?;
            serial::outcome_from_value(outcome)
                .map(CloseReply::Committed)
                .map_err(|e| ClientError::Protocol(format!("bad outcome payload: {e}")))
        }
        Some("aborted") => Ok(CloseReply::Aborted(
            doc.get("reason")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        )),
        other => Err(ClientError::Protocol(format!(
            "close reply with status {other:?}"
        ))),
    }
}

//! `fl-flpd` — the crash-safe auction service daemon.
//!
//! The mechanism crates solve one auction in one process; `flpd` turns
//! them into a long-running service: concurrent *sessions* accumulate
//! client profiles and sealed bids over TCP, an epoch *close* runs the
//! full `A_FL` mechanism (`fl_auction::run_auction`) on the session's
//! bid set, and the committed outcome — winners, schedules, payments,
//! dual certificate — is queryable until the daemon dies.
//!
//! The central promise is crash consistency: every acknowledged request
//! is first appended to a write-ahead [`journal`] and fsynced, so a
//! `kill -9` at *any* instant recovers to a state where each epoch is
//! either bit-identical to the fault-free outcome or explicitly marked
//! aborted — never torn, never silently different. The [`faults`] seam
//! injects drops, delays, duplicates and partial-write crash points to
//! let the [`chaos`] harness certify exactly that, across a matrix of
//! fault types and seeds.
//!
//! Module map:
//!
//! * [`wire`] — framed-JSON request protocol (idempotent via `seq`);
//! * [`journal`] — append-only WAL with torn-tail recovery;
//! * [`session`] — session state machine and request handler;
//! * [`daemon`] — TCP listener, deadlines, load shedding;
//! * [`client`] — retrying client with jittered backoff;
//! * [`faults`] — deterministic fault plans (`FLPD_FAULTS`);
//! * [`chaos`] — the fault-matrix certification harness;
//! * [`error`] — the retryable-vs-fatal error taxonomy.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Service code reports through responses and returned reports; only the
// bins print.
#![warn(clippy::print_stdout)]
#![warn(clippy::print_stderr)]

pub mod chaos;
pub mod client;
pub mod daemon;
pub mod error;
pub mod faults;
pub mod journal;
pub mod session;
#[doc(hidden)]
pub mod testutil;
pub mod wire;

pub use client::{Client, ClientConfig, ClientError, CloseReply};
pub use daemon::{Daemon, DaemonConfig};
pub use error::{ErrCode, ServiceError};
pub use faults::FaultPlan;
pub use journal::Durability;
pub use session::{Limits, RecoveryReport};

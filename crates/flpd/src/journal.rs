//! The write-ahead session journal.
//!
//! Every state change the daemon acknowledges is first appended here as
//! one framed JSON record (`fl_telemetry::frame`), so a `kill -9` at any
//! instant loses at most the *unacknowledged* tail: on restart the file
//! is scanned, a torn final record (the signature of a crash mid-append)
//! is truncated away, and the surviving records replay deterministically
//! into the exact session state the daemon had acknowledged.
//!
//! Record stream grammar (per session):
//!
//! ```text
//! batch:     open → client* → bid* → close_begin → close_commit
//! streaming: open(budget) → client* → decision* → close_begin → close_commit
//! ```
//!
//! A streaming session (opened with a budget) journals one `decision`
//! record per arriving bid *including the irrevocable commit/reject
//! verdict and payment*: recovery re-drives the same deterministic
//! online rule over the journaled arrivals and asserts the re-derived
//! verdicts match the journaled ones bit-for-bit, so a replayed daemon
//! can never silently re-decide an already-acknowledged arrival.
//!
//! `close_begin` is the intent marker: a journal that ends after a
//! `close_begin` with no matching `close_commit` means the daemon died
//! mid-solve — recovery re-runs the auction on the journaled bid set,
//! which is deterministic, so the re-derived outcome is bit-identical to
//! what the dead daemon would have committed.
//!
//! The crash-injection seam lives here too: a [`CrashPoint`] makes
//! `append` physically write only a prefix of one chosen record and then
//! poison the journal, which is byte-for-byte what a real crash mid-
//! `write(2)` leaves on disk.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use fl_auction::{serial, AuctionOutcome};
use fl_telemetry::frame::{self, FrameError};
use fl_telemetry::json::{self, Json};

use crate::wire::OpenParams;

/// Size cap for one journal record (outcomes scale with winner count).
pub const MAX_RECORD: usize = 4 << 20;

/// How eagerly the journal reaches the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// fsync after every record: an acknowledged mutation is never lost.
    /// This is the default and the only mode the chaos matrix certifies.
    Strict,
    /// fsync only at epoch boundaries (`close_begin`/`close_commit`);
    /// acknowledged bids between boundaries can be lost to a crash.
    /// Exists to measure the cost of `Strict` under load, not for
    /// production use.
    EpochOnly,
}

/// How an epoch ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CloseResult {
    /// The auction solved; the full outcome (winners, payments,
    /// certificate) is committed.
    Committed(AuctionOutcome),
    /// The epoch ended without an outcome (infeasible instance, solver
    /// failure); the reason is recorded so the abort is explicit, never
    /// silent.
    Aborted(String),
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A session was created.
    Open {
        /// Session handle.
        session: String,
        /// The session's auction parameters (including the idempotency
        /// nonce).
        params: OpenParams,
    },
    /// A client profile was accepted.
    Client {
        /// Session handle.
        session: String,
        /// Sequence number the acknowledgement carried.
        seq: u64,
        /// Per-round computation time.
        t_cmp: f64,
        /// Per-round communication time.
        t_com: f64,
    },
    /// A bid was accepted.
    Bid {
        /// Session handle.
        session: String,
        /// Sequence number the acknowledgement carried.
        seq: u64,
        /// Owning client index.
        client: u32,
        /// Claimed cost.
        price: f64,
        /// Local accuracy.
        theta: f64,
        /// Window start round.
        a: u32,
        /// Window end round.
        d: u32,
        /// Participation round budget.
        c: u32,
    },
    /// A streaming bid arrived and its irrevocable on-arrival verdict
    /// was taken (online sessions only). The verdict fields are stored
    /// alongside the bid so recovery can re-derive the decision and
    /// prove it bit-identical before trusting the rebuilt state.
    Decision {
        /// Session handle.
        session: String,
        /// Sequence number the acknowledgement carried.
        seq: u64,
        /// Owning client index.
        client: u32,
        /// Claimed cost.
        price: f64,
        /// Local accuracy.
        theta: f64,
        /// Window start round.
        a: u32,
        /// Window end round.
        d: u32,
        /// Participation round budget.
        c: u32,
        /// Whether the bid was committed.
        committed: bool,
        /// The posted offer paid on commit (`0.0` on rejection).
        payment: f64,
        /// The decision reason (`fl_auction::DecisionReason` spelling).
        reason: String,
        /// Whether this submission duplicated an earlier identical bid
        /// and replayed its original decision.
        duplicate: bool,
    },
    /// The daemon is about to solve the epoch.
    CloseBegin {
        /// Session handle.
        session: String,
        /// Sequence number of the close request.
        seq: u64,
    },
    /// The epoch decision is final.
    CloseCommit {
        /// Session handle.
        session: String,
        /// Outcome or explicit abort.
        result: CloseResult,
    },
}

/// The record's kind, used by [`CrashPoint`] targeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// `open` record.
    Open,
    /// `client` record.
    Client,
    /// `bid` record.
    Bid,
    /// `decision` record.
    Decision,
    /// `close_begin` record.
    CloseBegin,
    /// `close_commit` record.
    CloseCommit,
}

impl RecordKind {
    /// Wire/journal spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Open => "open",
            RecordKind::Client => "client",
            RecordKind::Bid => "bid",
            RecordKind::Decision => "decision",
            RecordKind::CloseBegin => "close_begin",
            RecordKind::CloseCommit => "close_commit",
        }
    }

    /// Parses the spelling back.
    pub fn parse_str(s: &str) -> Option<RecordKind> {
        Some(match s {
            "open" => RecordKind::Open,
            "client" => RecordKind::Client,
            "bid" => RecordKind::Bid,
            "decision" => RecordKind::Decision,
            "close_begin" => RecordKind::CloseBegin,
            "close_commit" => RecordKind::CloseCommit,
            _ => return None,
        })
    }

    fn index(self) -> usize {
        match self {
            RecordKind::Open => 0,
            RecordKind::Client => 1,
            RecordKind::Bid => 2,
            RecordKind::Decision => 3,
            RecordKind::CloseBegin => 4,
            RecordKind::CloseCommit => 5,
        }
    }
}

impl Record {
    /// The record's kind.
    pub fn kind(&self) -> RecordKind {
        match self {
            Record::Open { .. } => RecordKind::Open,
            Record::Client { .. } => RecordKind::Client,
            Record::Bid { .. } => RecordKind::Bid,
            Record::Decision { .. } => RecordKind::Decision,
            Record::CloseBegin { .. } => RecordKind::CloseBegin,
            Record::CloseCommit { .. } => RecordKind::CloseCommit,
        }
    }

    /// The session the record belongs to.
    pub fn session(&self) -> &str {
        match self {
            Record::Open { session, .. }
            | Record::Client { session, .. }
            | Record::Bid { session, .. }
            | Record::Decision { session, .. }
            | Record::CloseBegin { session, .. }
            | Record::CloseCommit { session, .. } => session,
        }
    }

    /// Serialises the record payload (one line of JSON, no framing).
    pub fn to_json(&self) -> String {
        self.to_json_with_trace(None)
    }

    /// Serialises the record payload with the originating request's trace
    /// id stamped on it, so a journal read tells *which* request caused
    /// each mutation. [`Record::from_json`] ignores the member (traces
    /// are forensic, not state), so trace-stamped and bare records replay
    /// identically.
    pub fn to_json_with_trace(&self, trace: Option<&str>) -> String {
        let mut members = vec![("rec".into(), json::string(self.kind().as_str()))];
        if let Some(trace) = trace {
            members.push(("trace".into(), json::string(trace)));
        }
        match self {
            Record::Open { session, params } => {
                members.push(("session".into(), json::string(session)));
                members.extend(params.json_members());
            }
            Record::Client {
                session,
                seq,
                t_cmp,
                t_com,
            } => {
                members.push(("session".into(), json::string(session)));
                members.push(("seq".into(), seq.to_string()));
                members.push(("t_cmp".into(), json::number(*t_cmp)));
                members.push(("t_com".into(), json::number(*t_com)));
            }
            Record::Bid {
                session,
                seq,
                client,
                price,
                theta,
                a,
                d,
                c,
            } => {
                members.push(("session".into(), json::string(session)));
                members.push(("seq".into(), seq.to_string()));
                members.push(("client".into(), client.to_string()));
                members.push(("price".into(), json::number(*price)));
                members.push(("theta".into(), json::number(*theta)));
                members.push(("a".into(), a.to_string()));
                members.push(("d".into(), d.to_string()));
                members.push(("c".into(), c.to_string()));
            }
            Record::Decision {
                session,
                seq,
                client,
                price,
                theta,
                a,
                d,
                c,
                committed,
                payment,
                reason,
                duplicate,
            } => {
                members.push(("session".into(), json::string(session)));
                members.push(("seq".into(), seq.to_string()));
                members.push(("client".into(), client.to_string()));
                members.push(("price".into(), json::number(*price)));
                members.push(("theta".into(), json::number(*theta)));
                members.push(("a".into(), a.to_string()));
                members.push(("d".into(), d.to_string()));
                members.push(("c".into(), c.to_string()));
                members.push(("committed".into(), committed.to_string()));
                members.push(("payment".into(), json::number(*payment)));
                members.push(("reason".into(), json::string(reason)));
                members.push(("duplicate".into(), duplicate.to_string()));
            }
            Record::CloseBegin { session, seq } => {
                members.push(("session".into(), json::string(session)));
                members.push(("seq".into(), seq.to_string()));
            }
            Record::CloseCommit { session, result } => {
                members.push(("session".into(), json::string(session)));
                match result {
                    CloseResult::Committed(outcome) => {
                        members.push(("outcome".into(), serial::outcome_to_json(outcome)));
                    }
                    CloseResult::Aborted(reason) => {
                        members.push(("aborted".into(), json::string(reason)));
                    }
                }
            }
        }
        json::object(&members)
    }

    /// Parses a record payload.
    ///
    /// # Errors
    ///
    /// Names the first missing or mistyped field.
    pub fn from_json(text: &str) -> Result<Record, String> {
        let doc = json::parse(text)?;
        let kind = doc
            .get("rec")
            .and_then(Json::as_str)
            .ok_or("missing \"rec\" discriminator")?;
        let kind = RecordKind::parse_str(kind).ok_or_else(|| format!("unknown record {kind:?}"))?;
        let session = doc
            .get("session")
            .and_then(Json::as_str)
            .ok_or("missing \"session\"")?
            .to_string();
        let seq = || {
            doc.get("seq")
                .and_then(Json::as_u64)
                .ok_or_else(|| "missing \"seq\"".to_string())
        };
        let f64_of = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number {key:?}"))
        };
        let u32_of = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| format!("missing u32 {key:?}"))
        };
        Ok(match kind {
            RecordKind::Open => Record::Open {
                session,
                params: OpenParams::from_value(&doc)?,
            },
            RecordKind::Client => Record::Client {
                session,
                seq: seq()?,
                t_cmp: f64_of("t_cmp")?,
                t_com: f64_of("t_com")?,
            },
            RecordKind::Bid => Record::Bid {
                session,
                seq: seq()?,
                client: u32_of("client")?,
                price: f64_of("price")?,
                theta: f64_of("theta")?,
                a: u32_of("a")?,
                d: u32_of("d")?,
                c: u32_of("c")?,
            },
            RecordKind::Decision => Record::Decision {
                session,
                seq: seq()?,
                client: u32_of("client")?,
                price: f64_of("price")?,
                theta: f64_of("theta")?,
                a: u32_of("a")?,
                d: u32_of("d")?,
                c: u32_of("c")?,
                committed: doc
                    .get("committed")
                    .and_then(Json::as_bool)
                    .ok_or("missing bool \"committed\"")?,
                payment: f64_of("payment")?,
                reason: doc
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or("missing \"reason\"")?
                    .to_string(),
                duplicate: doc
                    .get("duplicate")
                    .and_then(Json::as_bool)
                    .ok_or("missing bool \"duplicate\"")?,
            },
            RecordKind::CloseBegin => Record::CloseBegin {
                session,
                seq: seq()?,
            },
            RecordKind::CloseCommit => {
                let result = if let Some(reason) = doc.get("aborted").and_then(Json::as_str) {
                    CloseResult::Aborted(reason.to_string())
                } else {
                    let outcome = doc.get("outcome").ok_or("missing \"outcome\"")?;
                    CloseResult::Committed(serial::outcome_from_value(outcome)?)
                };
                Record::CloseCommit { session, result }
            }
        })
    }
}

/// Frames one record exactly as [`Journal::append`] writes it.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    encode_record_traced(rec, None)
}

/// Frames one record with a trace stamp, exactly as
/// [`Journal::append_with_trace`] writes it.
pub fn encode_record_traced(rec: &Record, trace: Option<&str>) -> Vec<u8> {
    let mut bytes = Vec::new();
    frame::write_frame(&mut bytes, &rec.to_json_with_trace(trace))
        .expect("Vec write is infallible");
    bytes
}

/// What a scan of journal bytes found.
#[derive(Debug)]
pub struct Scan {
    /// Records recovered, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (everything after is torn).
    pub valid_len: usize,
    /// Whether a torn or malformed tail was present.
    pub torn: bool,
}

/// Scans journal bytes, stopping (not failing) at the first torn or
/// malformed frame — exactly the tail a crash mid-append leaves.
pub fn scan_bytes(bytes: &[u8]) -> Scan {
    let mut r = bytes;
    let mut records = Vec::new();
    let mut valid_len = 0usize;
    loop {
        match frame::read_frame(&mut r, MAX_RECORD) {
            Ok(None) => {
                return Scan {
                    records,
                    valid_len,
                    torn: false,
                }
            }
            Ok(Some(payload)) => match Record::from_json(&payload) {
                Ok(rec) => {
                    valid_len = bytes.len() - r.len();
                    records.push(rec);
                }
                Err(_) => {
                    return Scan {
                        records,
                        valid_len,
                        torn: true,
                    }
                }
            },
            Err(FrameError::Io(_)) | Err(_) => {
                return Scan {
                    records,
                    valid_len,
                    torn: true,
                }
            }
        }
    }
}

/// A crash-injection target: die while appending the `nth` record of
/// `kind` (1-based), having physically written only `cut` of its bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPoint {
    /// Which record kind to die on.
    pub kind: RecordKind,
    /// 1-based occurrence count of that kind.
    pub nth: u32,
    /// Fraction of the frame physically written before death: `0.0`
    /// leaves a clean boundary, `1.0` writes the whole record first (a
    /// crash *between* records), anything else tears the tail.
    pub cut: f64,
}

/// The error kind `append` returns when a [`CrashPoint`] fires. The
/// daemon treats it as process death: stop everything, flush nothing.
pub fn is_injected_crash(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Other && e.to_string().contains("injected crash")
}

/// A jam-injection target: the `nth` append of `kind` (1-based) fails
/// with a *plain* I/O error — the daemon stays alive but must surface an
/// `internal` error and treat the journal as poisoned, exactly like a
/// real ENOSPC. The observability tests use this to drive the
/// `service.err.internal` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JamPoint {
    /// Which record kind to fail on.
    pub kind: RecordKind,
    /// 1-based occurrence count of that kind.
    pub nth: u32,
}

/// What `Journal::open` recovered from an existing file.
#[derive(Debug)]
pub struct Recovered {
    /// Records that survived, in order.
    pub records: Vec<Record>,
    /// Bytes of torn tail truncated away.
    pub truncated: u64,
}

/// The append-only session journal.
pub struct Journal {
    writer: Option<BufWriter<File>>,
    path: PathBuf,
    durability: Durability,
    crash: Option<CrashPoint>,
    jam: Option<JamPoint>,
    counts: [u32; 6],
    poisoned: bool,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("durability", &self.durability)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, scans it, and
    /// truncates any torn tail so the file ends at a record boundary.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn open(
        path: &Path,
        durability: Durability,
        crash: Option<CrashPoint>,
        jam: Option<JamPoint>,
    ) -> io::Result<(Journal, Recovered)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let scan = scan_bytes(&bytes);
        let truncated = (bytes.len() - scan.valid_len) as u64;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        if scan.torn {
            file.set_len(scan.valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.valid_len as u64))?;
        Ok((
            Journal {
                writer: Some(BufWriter::new(file)),
                path: path.to_path_buf(),
                durability,
                crash,
                jam,
                counts: [0; 6],
                poisoned: false,
            },
            Recovered {
                records: scan.records,
                truncated,
            },
        ))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record. Under [`Durability::Strict`] the record is
    /// flushed *and fsynced* before this returns — an `Ok` here means
    /// the mutation survives any crash.
    ///
    /// # Errors
    ///
    /// Real I/O failures (ENOSPC and friends) poison the journal, as
    /// does a firing [`CrashPoint`] (detect with [`is_injected_crash`]).
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        self.append_with_trace(rec, None)
    }

    /// [`append`](Self::append) with the originating request's trace id
    /// stamped on the record (see [`Record::to_json_with_trace`]).
    ///
    /// # Errors
    ///
    /// As for [`append`](Self::append).
    pub fn append_with_trace(&mut self, rec: &Record, trace: Option<&str>) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other("journal is poisoned"));
        }
        let kind = rec.kind();
        self.counts[kind.index()] += 1;
        if let Some(cp) = self.crash {
            if cp.kind == kind && self.counts[kind.index()] == cp.nth {
                return Err(self.crash_now(rec, trace, cp.cut));
            }
        }
        if let Some(jp) = self.jam {
            if jp.kind == kind && self.counts[kind.index()] == jp.nth {
                self.poison();
                return Err(io::Error::other(format!(
                    "injected jam at {}#{}",
                    kind.as_str(),
                    self.counts[kind.index()]
                )));
            }
        }
        let frame = encode_record_traced(rec, trace);
        let result = (|| {
            let w = self
                .writer
                .as_mut()
                .ok_or_else(|| io::Error::other("journal closed"))?;
            w.write_all(&frame)?;
            if self.durability == Durability::Strict
                || matches!(kind, RecordKind::CloseBegin | RecordKind::CloseCommit)
            {
                w.flush()?;
                w.get_ref().sync_data()?;
            }
            Ok(())
        })();
        if result.is_err() {
            self.poison();
        }
        result
    }

    /// Flushes and fsyncs everything buffered.
    ///
    /// # Errors
    ///
    /// Propagates (and poisons on) I/O failure.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other("journal is poisoned"));
        }
        let result = (|| {
            let w = self
                .writer
                .as_mut()
                .ok_or_else(|| io::Error::other("journal closed"))?;
            w.flush()?;
            w.get_ref().sync_data()
        })();
        if result.is_err() {
            self.poison();
        }
        result
    }

    /// Whether a crash or I/O failure has disabled the journal.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Simulated process death: flush what a real kernel would already
    /// have (previous completed writes), physically write `cut` of the
    /// pending frame, and poison the journal so nothing further —
    /// including the `BufWriter`'s drop-flush — reaches the file.
    fn crash_now(&mut self, rec: &Record, trace: Option<&str>, cut: f64) -> io::Error {
        let frame = encode_record_traced(rec, trace);
        let take = ((frame.len() as f64) * cut.clamp(0.0, 1.0)).round() as usize;
        let take = take.min(frame.len());
        if let Some(w) = self.writer.take() {
            // Earlier Strict-mode records were already fsynced; carry any
            // EpochOnly-buffered bytes over, then the torn prefix.
            match w.into_parts() {
                (mut file, Ok(buffered)) => {
                    let _ = file.write_all(&buffered);
                    let _ = file.write_all(&frame[..take]);
                    let _ = file.sync_data();
                }
                (mut file, Err(e)) => {
                    let _ = file.write_all(&frame[..take]);
                    let _ = file.sync_data();
                    drop(e);
                }
            }
        }
        self.poisoned = true;
        io::Error::other(format!(
            "injected crash at {}#{} (cut {cut})",
            rec.kind().as_str(),
            self.counts[rec.kind().index()]
        ))
    }

    /// Drops the file handle without flushing (used when the daemon
    /// simulates death for reasons other than a crash point).
    fn poison(&mut self) {
        self.poisoned = true;
        if let Some(w) = self.writer.take() {
            // Discard the buffer: a dead process never flushes.
            let _ = w.into_parts();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn bid(session: &str, seq: u64, price: f64) -> Record {
        Record::Bid {
            session: session.into(),
            seq,
            client: 0,
            price,
            theta: 0.55,
            a: 1,
            d: 6,
            c: 6,
        }
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Open {
                session: "s-1".into(),
                params: OpenParams::new(7, 6, 2, 60.0),
            },
            Record::Client {
                session: "s-1".into(),
                seq: 1,
                t_cmp: 2.0,
                t_com: 5.0,
            },
            bid("s-1", 2, 3.25),
            Record::CloseBegin {
                session: "s-1".into(),
                seq: 3,
            },
            Record::CloseCommit {
                session: "s-1".into(),
                result: CloseResult::Aborted("infeasible".into()),
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let back = Record::from_json(&rec.to_json()).unwrap();
            assert_eq!(back, rec);
        }
    }

    fn decision(seq: u64, committed: bool) -> Record {
        Record::Decision {
            session: "s-9".into(),
            seq,
            client: 2,
            price: 3.5,
            theta: 0.6,
            a: 1,
            d: 4,
            c: 3,
            committed,
            payment: if committed { 12.0 } else { 0.0 },
            reason: if committed {
                "committed"
            } else {
                "price_above_offer"
            }
            .into(),
            duplicate: false,
        }
    }

    #[test]
    fn decision_records_round_trip() {
        for rec in [decision(1, true), decision(2, false)] {
            let back = Record::from_json(&rec.to_json()).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn crash_point_targets_decision_records() {
        let dir = TempDir::new("journal-decision-crash");
        let path = dir.path().join("wal.jsonl");
        let cp = CrashPoint {
            kind: RecordKind::Decision,
            nth: 2,
            cut: 0.4,
        };
        let (mut journal, _) = Journal::open(&path, Durability::Strict, Some(cp), None).unwrap();
        journal.append(&decision(1, true)).unwrap();
        let err = journal.append(&decision(2, false)).unwrap_err();
        assert!(is_injected_crash(&err), "{err}");
        drop(journal);
        let scan = scan_bytes(&std::fs::read(&path).unwrap());
        assert!(scan.torn, "cut 0.4 must tear the second decision");
        assert_eq!(scan.records, vec![decision(1, true)]);
    }

    #[test]
    fn scan_recovers_appended_records_and_flags_torn_tail() {
        let mut bytes = Vec::new();
        for rec in sample_records() {
            bytes.extend_from_slice(&encode_record(&rec));
        }
        let clean = scan_bytes(&bytes);
        assert!(!clean.torn);
        assert_eq!(clean.records, sample_records());
        assert_eq!(clean.valid_len, bytes.len());

        // Tear the last record mid-frame.
        let keep = clean.valid_len - 7;
        let torn = scan_bytes(&bytes[..keep]);
        assert!(torn.torn);
        assert_eq!(torn.records.len(), sample_records().len() - 1);
        // The valid prefix ends exactly at the last whole record.
        let prior: usize = sample_records()[..4]
            .iter()
            .map(|r| encode_record(r).len())
            .sum();
        assert_eq!(torn.valid_len, prior);
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_cleanly() {
        let dir = TempDir::new("journal-torn");
        let path = dir.path().join("wal.jsonl");
        let mut bytes = Vec::new();
        for rec in sample_records() {
            bytes.extend_from_slice(&encode_record(&rec));
        }
        let cut = bytes.len() - 5;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let (mut journal, recovered) =
            Journal::open(&path, Durability::Strict, None, None).unwrap();
        assert_eq!(recovered.records.len(), 4);
        assert!(recovered.truncated > 0);
        journal.append(&bid("s-1", 9, 1.5)).unwrap();
        drop(journal);

        let reread = scan_bytes(&std::fs::read(&path).unwrap());
        assert!(!reread.torn);
        assert_eq!(reread.records.len(), 5);
        assert_eq!(reread.records[4], bid("s-1", 9, 1.5));
    }

    #[test]
    fn crash_point_tears_exactly_the_targeted_record() {
        let dir = TempDir::new("journal-crash");
        let path = dir.path().join("wal.jsonl");
        let cp = CrashPoint {
            kind: RecordKind::Bid,
            nth: 2,
            cut: 0.5,
        };
        let (mut journal, _) = Journal::open(&path, Durability::Strict, Some(cp), None).unwrap();
        journal.append(&bid("s-1", 1, 1.0)).unwrap();
        let err = journal.append(&bid("s-1", 2, 2.0)).unwrap_err();
        assert!(is_injected_crash(&err), "{err}");
        assert!(journal.poisoned());
        // Post-crash appends fail without touching the file.
        assert!(journal.append(&bid("s-1", 3, 3.0)).is_err());
        drop(journal);

        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_bytes(&bytes);
        assert!(scan.torn, "half a record must be on disk");
        assert_eq!(scan.records, vec![bid("s-1", 1, 1.0)]);

        // Reopening recovers: torn tail gone, appends work again.
        let (mut journal, recovered) =
            Journal::open(&path, Durability::Strict, None, None).unwrap();
        assert_eq!(recovered.records.len(), 1);
        assert!(recovered.truncated > 0);
        journal.append(&bid("s-1", 2, 2.0)).unwrap();
        drop(journal);
        assert!(!scan_bytes(&std::fs::read(&path).unwrap()).torn);
    }

    #[test]
    fn crash_with_zero_cut_leaves_clean_boundary() {
        let dir = TempDir::new("journal-cut0");
        let path = dir.path().join("wal.jsonl");
        let cp = CrashPoint {
            kind: RecordKind::CloseBegin,
            nth: 1,
            cut: 0.0,
        };
        let (mut journal, _) = Journal::open(&path, Durability::Strict, Some(cp), None).unwrap();
        journal.append(&bid("s-1", 1, 1.0)).unwrap();
        let err = journal
            .append(&Record::CloseBegin {
                session: "s-1".into(),
                seq: 2,
            })
            .unwrap_err();
        assert!(is_injected_crash(&err));
        drop(journal);
        let scan = scan_bytes(&std::fs::read(&path).unwrap());
        assert!(!scan.torn, "cut 0.0 writes nothing of the record");
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn committed_outcome_records_round_trip_bit_identically() {
        use fl_auction::{run_auction, AuctionConfig, Bid, ClientProfile, Instance, Round, Window};
        let cfg = AuctionConfig::builder()
            .max_rounds(6)
            .clients_per_round(2)
            .round_time_limit(60.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        for i in 0..4u32 {
            let c = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
            inst.add_bid(
                c,
                Bid::new(2.0 + f64::from(i), 0.5, Window::new(Round(1), Round(6)), 6).unwrap(),
            )
            .unwrap();
        }
        let outcome = run_auction(&inst).unwrap();
        let rec = Record::CloseCommit {
            session: "s-1".into(),
            result: CloseResult::Committed(outcome.clone()),
        };
        match Record::from_json(&rec.to_json()).unwrap() {
            Record::CloseCommit {
                result: CloseResult::Committed(back),
                ..
            } => assert_eq!(back, outcome),
            other => panic!("{other:?}"),
        }
    }
}

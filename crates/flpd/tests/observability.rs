//! The live observability plane, end to end: every error code in the
//! taxonomy lands in its own `service.err.<code>` counter, automatic
//! flight dumps fire on shed storms and crash recovery, and the flight
//! recorder stays coherent under fault injection and ring wrap.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use fl_flpd::daemon::{DaemonConfig, SHED_STORM_THRESHOLD};
use fl_flpd::wire::{self, BidParams, OpenParams, Request};
use fl_flpd::{Client, ClientConfig, Daemon, ErrCode, FaultPlan, Limits};
use fl_telemetry::flight::events_from_json;
use fl_telemetry::frame;
use fl_telemetry::json::{self, Json};

fn scratch(tag: &str) -> fl_flpd::testutil::TempDir {
    fl_flpd::testutil::TempDir::new(tag)
}

fn raw_conn(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// One framed request/response exchange on an existing connection.
fn raw_call(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, text: &str) -> Json {
    frame::write_frame(stream, text).unwrap();
    let payload = frame::read_frame(reader, 4 << 20).unwrap().expect("reply");
    json::parse(&payload).unwrap()
}

/// One exchange on a fresh connection (error paths close the stream).
fn one_shot(addr: std::net::SocketAddr, text: &str) -> Json {
    let (mut stream, mut reader) = raw_conn(addr);
    raw_call(&mut stream, &mut reader, text)
}

fn err_code(doc: &Json) -> Option<&str> {
    doc.get("code").and_then(Json::as_str)
}

fn err_counter(stats: &Json, code: ErrCode) -> u64 {
    stats
        .get("live")
        .and_then(|l| l.get("counters"))
        .and_then(|c| c.get(&format!("service.err.{code}")))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Drives the daemon through every error in the taxonomy on one process
/// and asserts each `service.err.<code>` counter counted its own code —
/// the stats plane distinguishes all eight, not just "errors happened".
#[test]
fn every_error_code_lands_in_its_own_counter() {
    let dir = scratch("obs-taxonomy");
    let mut cfg = DaemonConfig::new(dir.path().join("wal.jsonl"));
    cfg.limits = Limits {
        max_sessions: 1,
        max_inflight_close: 0,
    };
    cfg.max_frame = 512;
    cfg.io_timeout = Duration::from_millis(300);
    // The first `client` journal append fails with a plain I/O error —
    // the `internal` path. Triggered last: a jammed journal poisons
    // every later append.
    cfg.faults = Some(FaultPlan::parse("jam=client:1").unwrap());
    let daemon = Daemon::start(cfg).unwrap();
    let addr = daemon.addr();

    // overloaded: the session cap is 1, the second open is shed.
    let open = one_shot(addr, r#"{"op":"open","nonce":1,"t":6,"k":2,"t_max":60}"#);
    let sid = open
        .get("session")
        .and_then(Json::as_str)
        .expect("first open succeeds")
        .to_string();
    let shed = one_shot(addr, r#"{"op":"open","nonce":2,"t":6,"k":2,"t_max":60}"#);
    assert_eq!(err_code(&shed), Some("overloaded"));

    // unknown_session: a mutation against a session that never existed.
    let ghost = one_shot(
        addr,
        r#"{"op":"bid","session":"s-404","seq":1,"client":0,"price":2,"theta":0.5,"a":1,"d":6,"c":6}"#,
    );
    assert_eq!(err_code(&ghost), Some("unknown_session"));

    // bad_request: an unparseable request body.
    let garbage = one_shot(addr, "this is not a request");
    assert_eq!(err_code(&garbage), Some("bad_request"));

    // conflict: seq 0 is always stale (nothing was ever applied at 0).
    let stale = one_shot(
        addr,
        &format!(r#"{{"op":"client","session":"{sid}","seq":0,"t_cmp":2,"t_com":5}}"#),
    );
    assert_eq!(err_code(&stale), Some("conflict"));

    // backlog: zero close slots shed every close before journaling.
    let backlog = one_shot(
        addr,
        &format!(r#"{{"op":"close","session":"{sid}","seq":1}}"#),
    );
    assert_eq!(err_code(&backlog), Some("backlog"));

    // deadline: hold a connection idle past the io timeout; the daemon
    // hangs up and accounts the lost connection.
    {
        let (_stream, mut reader) = raw_conn(addr);
        let got = frame::read_frame(&mut reader, 64 << 10).unwrap();
        assert!(got.is_none(), "idle connection must be disconnected");
    }

    // too_large: a frame over the 512-byte cap is rejected before parse.
    let huge = one_shot(addr, &format!(r#"{{"pad":"{}"}}"#, "x".repeat(600)));
    assert_eq!(err_code(&huge), Some("too_large"));

    // internal (last): the jammed journal append surfaces as a fatal
    // internal error instead of dying or lying about durability.
    let jammed = one_shot(
        addr,
        &format!(r#"{{"op":"client","session":"{sid}","seq":1,"t_cmp":2,"t_com":5}}"#),
    );
    assert_eq!(err_code(&jammed), Some("internal"));

    // The stats plane must have counted each code under its own name.
    let stats = one_shot(addr, &wire::request_to_json(99, &Request::Stats));
    for code in ErrCode::ALL {
        assert!(
            err_counter(&stats, code) >= 1,
            "service.err.{code} did not count its error: {stats:?}"
        );
    }
    // And only what actually fired: one overloaded, one deadline.
    assert_eq!(err_counter(&stats, ErrCode::Overloaded), 1);
    assert_eq!(err_counter(&stats, ErrCode::Deadline), 1);
}

/// Crossing [`SHED_STORM_THRESHOLD`] sheds writes one automatic flight
/// dump naming the storm, with the shed events inside it.
#[test]
fn shed_storm_writes_an_automatic_flight_dump() {
    let dir = scratch("obs-storm");
    let dumps = dir.path().join("dumps");
    let mut cfg = DaemonConfig::new(dir.path().join("wal.jsonl"));
    cfg.max_conns = 1;
    cfg.dump_dir = Some(dumps.clone());
    let daemon = Daemon::start(cfg).unwrap();

    // Fill the only slot with a live connection…
    let (mut holder, mut holder_reader) = raw_conn(daemon.addr());
    let pong = raw_call(
        &mut holder,
        &mut holder_reader,
        &wire::request_to_json(1, &Request::Ping),
    );
    assert!(wire::error_from_value(&pong).is_none());

    // …then shed one connection past the storm threshold. Reading the
    // shed frame synchronizes: the dump is written before the frame.
    for _ in 0..=SHED_STORM_THRESHOLD {
        let (_stream, mut reader) = raw_conn(daemon.addr());
        let payload = frame::read_frame(&mut reader, 64 << 10)
            .unwrap()
            .expect("shed frame");
        let doc = json::parse(&payload).unwrap();
        assert_eq!(err_code(&doc), Some("overloaded"));
    }

    let dump_path = dumps.join(format!("flight-shed-storm-{}.json", daemon.addr().port()));
    let text = std::fs::read_to_string(&dump_path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", dump_path.display()));
    let events = events_from_json(&json::parse(&text).unwrap()).expect("dump parses");
    let sheds = events.iter().filter(|e| e.kind == "shed").count();
    assert!(
        sheds as u64 >= SHED_STORM_THRESHOLD,
        "storm dump holds {sheds} shed events"
    );
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "dump must be in causal order"
    );
}

/// An injected mid-close crash, then a restart on the same journal: the
/// recovering daemon re-solves the pending close and writes an automatic
/// recovery flight dump whose events narrate what was repaired.
#[test]
fn crash_recovery_writes_an_automatic_flight_dump() {
    let dir = scratch("obs-recovery");
    let journal = dir.path().join("wal.jsonl");
    let dumps = dir.path().join("dumps");

    // First life: die appending the close commit.
    {
        let mut cfg = DaemonConfig::new(journal.clone());
        cfg.faults = Some(FaultPlan::parse("crash=close_commit:1").unwrap());
        let daemon = Daemon::start(cfg).unwrap();
        let (mut stream, mut reader) = raw_conn(daemon.addr());
        let open = raw_call(
            &mut stream,
            &mut reader,
            r#"{"op":"open","nonce":1,"t":6,"k":1,"t_max":60}"#,
        );
        let sid = open
            .get("session")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        raw_call(
            &mut stream,
            &mut reader,
            &format!(r#"{{"op":"client","session":"{sid}","seq":1,"t_cmp":2,"t_com":5}}"#),
        );
        raw_call(
            &mut stream,
            &mut reader,
            &format!(
                r#"{{"op":"bid","session":"{sid}","seq":2,"client":0,"price":2,"theta":0.55,"a":1,"d":6,"c":6}}"#
            ),
        );
        // The close crashes the daemon: no response, just EOF.
        frame::write_frame(
            &mut stream,
            &format!(r#"{{"op":"close","session":"{sid}","seq":3}}"#),
        )
        .unwrap();
        assert!(frame::read_frame(&mut reader, 64 << 10).unwrap().is_none());
        assert!(daemon.crashed());
        std::mem::forget(daemon); // died; no graceful stop
    }

    // Second life: recovery re-solves the close and dumps about it.
    let mut cfg = DaemonConfig::new(journal);
    cfg.dump_dir = Some(dumps.clone());
    let daemon = Daemon::start(cfg).unwrap();
    assert_eq!(daemon.recovery().replayed_closes, 1);
    let dump_path = dumps.join(format!("flight-recovery-{}.json", daemon.addr().port()));
    let text = std::fs::read_to_string(&dump_path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", dump_path.display()));
    let events = events_from_json(&json::parse(&text).unwrap()).expect("dump parses");
    assert!(
        events
            .iter()
            .any(|e| e.trace == "recovery" && e.detail.contains("re-solved 1 pending closes")),
        "recovery dump must narrate the re-solve: {events:?}"
    );

    // The recovered session serves its outcome, and the live flight
    // plane agrees with the on-disk dump's history.
    let mut client = Client::new(daemon.addr(), ClientConfig::default());
    let flight = client.flight().unwrap();
    let live = events_from_json(flight.get("flight").unwrap()).unwrap();
    assert!(live.iter().any(|e| e.trace == "recovery"));
}

/// Under wire chaos (dropped and duplicated responses) with a retrying
/// client, the flight dump stays coherent: it parses, is causally
/// ordered, and every request trace opens with a `req` event.
#[test]
fn flight_dump_is_coherent_under_wire_faults() {
    let dir = scratch("obs-chaos");
    let mut cfg = DaemonConfig::new(dir.path().join("wal.jsonl"));
    cfg.faults = Some(FaultPlan::parse("seed=7,drop=0.25,dup=0.2").unwrap());
    cfg.io_timeout = Duration::from_millis(300);
    let daemon = Daemon::start(cfg).unwrap();
    let mut client = Client::new(
        daemon.addr(),
        ClientConfig {
            io_timeout: Duration::from_millis(400),
            max_attempts: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            seed: 11,
            ..ClientConfig::default()
        },
    );

    let sid = client.open(OpenParams::new(0, 6, 1, 60.0)).unwrap();
    for c in 0..3u32 {
        client.add_client(&sid, 1.5, 3.0).unwrap();
        client
            .add_bid(
                &sid,
                BidParams {
                    client: c,
                    price: 2.0 + f64::from(c),
                    theta: 0.55,
                    a: 1,
                    d: 6,
                    c: 6,
                },
            )
            .unwrap();
    }
    client.close(&sid).unwrap();

    let flight = client.flight().unwrap();
    let events = events_from_json(flight.get("flight").unwrap()).expect("dump parses under chaos");
    assert!(!events.is_empty());
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "dump must be causally ordered"
    );
    // Per-trace projection: every request trace starts with its `req`.
    let mut seen = std::collections::HashSet::new();
    for e in &events {
        if (e.trace.starts_with("cli-") || e.trace.starts_with("srv-")) && seen.insert(&e.trace) {
            assert_eq!(e.kind, "req", "trace {} starts with {:?}", e.trace, e.kind);
        }
    }
    // Retries reuse one logical trace, so at least one trace must carry
    // more than one `req` under a 25% drop rate with this seed — the
    // propagation, not just the fallback, is what is being verified.
    assert!(
        client.retries() > 0,
        "chaos plan produced no retries; the test lost its teeth"
    );
}

/// Ring wrap under sustained load: far more events than one ring holds,
/// then a dump that still parses, stays bounded, and keeps causal order.
#[test]
fn flight_ring_wrap_keeps_dumps_bounded_and_ordered() {
    let dir = scratch("obs-wrap");
    let daemon = Daemon::start(DaemonConfig::new(dir.path().join("wal.jsonl"))).unwrap();
    let (mut stream, mut reader) = raw_conn(daemon.addr());
    // Each ping records a req and a resp event: 800 pings is well past
    // the 1024-event per-thread ring.
    for i in 0..800u64 {
        let doc = raw_call(
            &mut stream,
            &mut reader,
            &wire::request_to_json(i, &Request::Ping),
        );
        assert!(wire::error_from_value(&doc).is_none());
    }
    let flight = raw_call(
        &mut stream,
        &mut reader,
        &wire::request_to_json(9000, &Request::Flight),
    );
    let events = events_from_json(flight.get("flight").unwrap()).expect("dump parses after wrap");
    assert!(
        events.len() <= 2 * 1024 + 64,
        "dump must stay ring-bounded, got {} events",
        events.len()
    );
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "wrapped dump must stay causally ordered"
    );
    // The oldest events were overwritten: the dump no longer starts at
    // the beginning of history.
    assert!(events.first().map_or(0, |e| e.seq) > 1);
}

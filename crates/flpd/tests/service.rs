//! End-to-end service tests: real daemon, real TCP, real journal.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use fl_auction::{run_auction, serial, Bid, ClientId, ClientProfile, Instance, Round, Window};
use fl_flpd::chaos::{run_matrix, FaultKind, MatrixConfig};
use fl_flpd::client::{PaymentReply, SubmitReply};
use fl_flpd::daemon::DaemonConfig;
use fl_flpd::wire::{self, BidParams, OpenParams, Request};
use fl_flpd::{
    Client, ClientConfig, ClientError, CloseReply, Daemon, ErrCode, Limits, ServiceError,
};
use fl_telemetry::frame;
use fl_telemetry::json::{self, Json};

fn scratch(tag: &str) -> fl_flpd::testutil::TempDir {
    fl_flpd::testutil::TempDir::new(tag)
}

fn fast_client(addr: std::net::SocketAddr) -> Client {
    Client::new(
        addr,
        ClientConfig {
            io_timeout: Duration::from_millis(500),
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            seed: 7,
            ..ClientConfig::default()
        },
    )
}

/// The daemon's committed outcome must be bit-identical to solving the
/// same instance locally.
#[test]
fn lifecycle_matches_local_reference() {
    let dir = scratch("svc-lifecycle");
    let daemon = Daemon::start(DaemonConfig::new(dir.path().join("wal.jsonl"))).unwrap();
    let mut client = fast_client(daemon.addr());

    let params = OpenParams::new(0, 6, 1, 60.0);
    let sid = client.open(params.clone()).unwrap();
    let profiles = [(1.5, 3.0), (2.0, 4.0), (1.0, 2.5)];
    let bids = [
        BidParams {
            client: 0,
            price: 4.0,
            theta: 0.6,
            a: 1,
            d: 4,
            c: 3,
        },
        BidParams {
            client: 1,
            price: 2.5,
            theta: 0.5,
            a: 2,
            d: 6,
            c: 4,
        },
        BidParams {
            client: 2,
            price: 6.0,
            theta: 0.7,
            a: 1,
            d: 6,
            c: 2,
        },
    ];
    for &(t_cmp, t_com) in &profiles {
        client.add_client(&sid, t_cmp, t_com).unwrap();
    }
    for bid in &bids {
        client.add_bid(&sid, *bid).unwrap();
    }
    let CloseReply::Committed(remote) = client.close(&sid).unwrap() else {
        panic!("epoch should commit");
    };

    // Local ground truth on the identical instance.
    let mut instance = Instance::new(params.to_config().unwrap());
    for &(t_cmp, t_com) in &profiles {
        instance.add_client(ClientProfile::new(t_cmp, t_com).unwrap());
    }
    for b in &bids {
        instance
            .add_bid(
                ClientId(b.client),
                Bid::new(b.price, b.theta, Window::new(Round(b.a), Round(b.d)), b.c).unwrap(),
            )
            .unwrap();
    }
    let local = run_auction(&instance).unwrap();
    assert_eq!(
        serial::outcome_to_json(&remote),
        serial::outcome_to_json(&local),
        "service outcome must be bit-identical to a local solve"
    );

    // Outcome query replays the same decision; payments are consistent.
    let CloseReply::Committed(again) = client.outcome(&sid).unwrap() else {
        panic!("outcome query should see the commit");
    };
    assert_eq!(
        serial::outcome_to_json(&again),
        serial::outcome_to_json(&local)
    );
    let mut paid = 0.0;
    for c in 0..profiles.len() as u32 {
        match client.payments(&sid, c).unwrap() {
            PaymentReply::Committed { total, .. } => paid += total,
            PaymentReply::Aborted(r) => panic!("unexpected abort: {r}"),
        }
    }
    let local_paid: f64 = local.solution().winners().iter().map(|w| w.payment).sum();
    assert!((paid - local_paid).abs() < 1e-12);
}

/// Raw framed exchange on one connection.
fn raw_call(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, text: &str) -> Json {
    frame::write_frame(stream, text).unwrap();
    let payload = frame::read_frame(reader, 4 << 20).unwrap().expect("reply");
    json::parse(&payload).unwrap()
}

fn raw_conn(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// At 2x the connection cap, excess connections get an explicit
/// retryable `overloaded` frame within the deadline — never a stall.
#[test]
fn overload_sheds_with_retryable_errors() {
    let dir = scratch("svc-shed");
    let mut cfg = DaemonConfig::new(dir.path().join("wal.jsonl"));
    cfg.max_conns = 2;
    cfg.io_timeout = Duration::from_secs(5);
    let daemon = Daemon::start(cfg).unwrap();

    // Fill the cap with two live connections (ping proves each is
    // being served, not just queued in the accept backlog).
    let mut holders = Vec::new();
    for _ in 0..2 {
        let (mut stream, mut reader) = raw_conn(daemon.addr());
        let doc = raw_call(
            &mut stream,
            &mut reader,
            &wire::request_to_json(1, &Request::Ping),
        );
        assert!(wire::error_from_value(&doc).is_none());
        holders.push((stream, reader));
    }

    // 2x the cap beyond it: every one must be shed promptly.
    let deadline = Duration::from_secs(2);
    for i in 0..4 {
        let start = Instant::now();
        let (_stream, mut reader) = raw_conn(daemon.addr());
        let payload = frame::read_frame(&mut reader, 64 << 10)
            .unwrap()
            .expect("shed frame");
        let doc = json::parse(&payload).unwrap();
        let err = wire::error_from_value(&doc).expect("shed is an error frame");
        assert_eq!(err.code, ErrCode::Overloaded, "conn {i}");
        assert!(err.retryable(), "shed must be retryable");
        assert!(
            start.elapsed() < deadline,
            "shed reply stalled: {:?}",
            start.elapsed()
        );
    }
    assert!(daemon.shed_count() >= 4);
}

/// With zero close slots every close sheds with `backlog`; the client
/// surfaces retry exhaustion rather than hanging.
#[test]
fn close_backlog_is_retryable_and_bounded() {
    let dir = scratch("svc-backlog");
    let mut cfg = DaemonConfig::new(dir.path().join("wal.jsonl"));
    cfg.limits = Limits {
        max_sessions: 16,
        max_inflight_close: 0,
    };
    let daemon = Daemon::start(cfg).unwrap();
    let mut client = fast_client(daemon.addr());
    let sid = client.open(OpenParams::new(0, 5, 1, 60.0)).unwrap();
    client.add_client(&sid, 1.0, 2.0).unwrap();

    let start = Instant::now();
    match client.close(&sid) {
        Err(ClientError::Exhausted { attempts, last }) => {
            assert_eq!(attempts, 6);
            assert!(last.contains("backlog"), "last failure: {last}");
        }
        other => panic!("expected retry exhaustion, got {other:?}"),
    }
    assert!(client.retries() >= 5);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "close retries must stay bounded"
    );
}

/// An idle connection is disconnected once the io deadline expires —
/// the daemon never parks a reader forever.
#[test]
fn idle_connection_closed_by_deadline() {
    let dir = scratch("svc-idle");
    let mut cfg = DaemonConfig::new(dir.path().join("wal.jsonl"));
    cfg.io_timeout = Duration::from_millis(150);
    let daemon = Daemon::start(cfg).unwrap();

    let (_stream, mut reader) = raw_conn(daemon.addr());
    let start = Instant::now();
    // Send nothing; the daemon must hang up on its own.
    let got = frame::read_frame(&mut reader, 64 << 10).unwrap();
    assert!(got.is_none(), "expected EOF from idle disconnect");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "idle disconnect took {:?}",
        start.elapsed()
    );
}

/// Crash mid-journal-append, restart on the same journal, and the
/// recovered epoch must be bit-identical to the fault-free outcome.
/// (The chaos matrix runs this over many seeds; this pins one cell of
/// each crashing family as a plain test.)
#[test]
fn crash_recovery_is_bit_identical() {
    let report = run_matrix(&MatrixConfig {
        kinds: vec![FaultKind::Partial, FaultKind::Crash],
        seeds: 2,
        sessions: 2,
    });
    for cell in &report.cells {
        assert!(
            cell.pass,
            "{}#{} violated consistency: {}",
            cell.kind.as_str(),
            cell.seed,
            cell.detail
        );
    }
    assert!(
        report.cells.iter().any(|c| c.crashes > 0),
        "at least one cell must actually crash for this test to mean anything"
    );
}

/// A flaky listener: drops the first connection outright, sheds the
/// second with a retryable error, then proxies nothing but answers ok.
/// The client must ride through both failures and succeed on the third
/// attempt; a fatal error must abort immediately.
#[test]
fn client_retries_flaky_listener_and_respects_fatal_errors() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // 1st conn: slam the door (transport error for the client).
        let (c1, _) = listener.accept().unwrap();
        drop(c1);
        // 2nd conn: retryable service error.
        let (mut c2, _) = listener.accept().unwrap();
        let mut r2 = BufReader::new(c2.try_clone().unwrap());
        let _ = frame::read_frame(&mut r2, 64 << 10);
        let shed = ServiceError::new(ErrCode::Overloaded, "synthetic shed");
        frame::write_frame(&mut c2, &wire::error_response(&shed)).unwrap();
        drop(c2);
        // 3rd conn: success, then a *fatal* error on the next request.
        let (mut c3, _) = listener.accept().unwrap();
        let mut r3 = BufReader::new(c3.try_clone().unwrap());
        let req = frame::read_frame(&mut r3, 64 << 10).unwrap().unwrap();
        let doc = json::parse(&req).unwrap();
        let id = doc.get("id").and_then(Json::as_u64).unwrap();
        frame::write_frame(&mut c3, &format!("{{\"id\":{id},\"ok\":true}}")).unwrap();
        let _ = frame::read_frame(&mut r3, 64 << 10);
        let fatal = ServiceError::new(ErrCode::BadRequest, "synthetic fatal");
        frame::write_frame(&mut c3, &wire::error_response(&fatal)).unwrap();
    });

    let mut client = fast_client(addr);
    client
        .ping()
        .expect("ping should survive two flaky attempts");
    assert!(
        client.retries() >= 2,
        "expected at least two retries, saw {}",
        client.retries()
    );
    let retries_before = client.retries();
    match client.ping() {
        Err(ClientError::Service(e)) => {
            assert_eq!(e.code, ErrCode::BadRequest);
            assert!(!e.retryable());
        }
        other => panic!("fatal error must not be retried: {other:?}"),
    }
    assert_eq!(
        client.retries(),
        retries_before,
        "fatal errors must not consume retry budget"
    );
    server.join().unwrap();
}

/// End-to-end streaming session: submits decide on arrival, duplicate
/// re-submissions replay their original verdict under fresh seqs, the
/// wrong-op pairs are fatal `conflict`s in both directions, and the
/// close commits exactly the on-arrival committed set.
#[test]
fn streaming_session_over_the_wire() {
    let dir = scratch("svc-streaming");
    let daemon = Daemon::start(DaemonConfig::new(dir.path().join("wal.jsonl"))).unwrap();
    let mut client = fast_client(daemon.addr());

    // K = 1, T = 4, B = 40 → posted offer π = 10 per round.
    let sid = client
        .open(OpenParams::streaming(0, 4, 1, 60.0, 40.0))
        .unwrap();
    client.add_client(&sid, 2.0, 5.0).unwrap();
    let bid = BidParams {
        client: 0,
        price: 25.0,
        theta: 0.55,
        a: 1,
        d: 4,
        c: 4,
    };
    let d1 = client.submit(&sid, bid).unwrap();
    assert_eq!(
        d1,
        SubmitReply {
            bid: 0,
            committed: true,
            reason: "committed".into(),
            payment: 40.0,
            duplicate: false,
        }
    );

    // Identical re-submission (fresh seq): the daemon replays the
    // original verdict instead of double-hiring.
    let dup = client.submit(&sid, bid).unwrap();
    assert!(dup.duplicate, "re-submission must be flagged");
    assert_eq!((dup.bid, dup.committed, dup.payment), (0, true, 40.0));

    // A genuinely new bid is rejected explicitly — coverage is full.
    let d2 = client
        .submit(
            &sid,
            BidParams {
                client: 0,
                price: 1.0,
                theta: 0.55,
                a: 1,
                d: 4,
                c: 4,
            },
        )
        .unwrap();
    assert!(!d2.committed);
    assert_eq!(d2.reason, "no_capacity");

    // Wrong op for the session mode: fatal conflict, both directions.
    match client.add_bid(&sid, bid) {
        Err(ClientError::Service(e)) => assert_eq!(e.code, ErrCode::Conflict),
        other => panic!("bid on a streaming session must conflict: {other:?}"),
    }
    let batch_sid = client.open(OpenParams::new(0, 4, 1, 60.0)).unwrap();
    client.add_client(&batch_sid, 2.0, 5.0).unwrap();
    match client.submit(&batch_sid, bid) {
        Err(ClientError::Service(e)) => assert_eq!(e.code, ErrCode::Conflict),
        other => panic!("submit on a batch session must conflict: {other:?}"),
    }

    // The streaming close needs no solve: it commits the set already
    // decided on arrival, and survives a restart.
    let first = match client.close(&sid).unwrap() {
        CloseReply::Committed(o) => {
            assert_eq!(o.solution().winners().len(), 1);
            assert!((o.solution().winners()[0].payment - 40.0).abs() < 1e-12);
            serial::outcome_to_json(&o)
        }
        CloseReply::Aborted(r) => panic!("unexpected abort: {r}"),
    };
    drop(daemon);
    let daemon = Daemon::start(DaemonConfig::new(dir.path().join("wal.jsonl"))).unwrap();
    assert_eq!(daemon.recovery().anomalies, 0);
    let mut client = fast_client(daemon.addr());
    match client.outcome(&sid).unwrap() {
        CloseReply::Committed(o) => assert_eq!(serial::outcome_to_json(&o), first),
        CloseReply::Aborted(r) => panic!("lost the streaming commit: {r}"),
    }
}

/// Duplicate batch bids are deduplicated server-side: re-adding an
/// identical bid under a fresh seq returns the original index and a
/// duplicate marker rather than growing the instance.
#[test]
fn duplicate_batch_bids_are_idempotent_over_the_wire() {
    let dir = scratch("svc-dup-bids");
    let daemon = Daemon::start(DaemonConfig::new(dir.path().join("wal.jsonl"))).unwrap();
    let mut client = fast_client(daemon.addr());
    let sid = client.open(OpenParams::new(0, 6, 1, 60.0)).unwrap();
    client.add_client(&sid, 1.2, 2.4).unwrap();
    let bid = BidParams {
        client: 0,
        price: 3.0,
        theta: 0.6,
        a: 1,
        d: 5,
        c: 3,
    };
    assert_eq!(client.add_bid(&sid, bid).unwrap(), 0);
    assert_eq!(client.add_bid(&sid, bid).unwrap(), 0, "dup replays index");
    let mut other = bid;
    other.price = 4.0;
    assert_eq!(client.add_bid(&sid, other).unwrap(), 1);
    // The close sees exactly two bids — no phantom duplicates.
    match client.close(&sid).unwrap() {
        CloseReply::Committed(o) => assert_eq!(o.solution().winners().len(), 1),
        CloseReply::Aborted(r) => panic!("unexpected abort: {r}"),
    }
}

/// Restarting on a journal written by a *previous daemon process*
/// (clean shutdown, no crash) serves the committed outcome again.
#[test]
fn journal_survives_clean_restart() {
    let dir = scratch("svc-restart");
    let journal = dir.path().join("wal.jsonl");
    let first;
    {
        let daemon = Daemon::start(DaemonConfig::new(journal.clone())).unwrap();
        let mut client = fast_client(daemon.addr());
        let sid = client.open(OpenParams::new(0, 5, 1, 60.0)).unwrap();
        client.add_client(&sid, 1.2, 2.4).unwrap();
        client
            .add_bid(
                &sid,
                BidParams {
                    client: 0,
                    price: 3.0,
                    theta: 0.6,
                    a: 1,
                    d: 5,
                    c: 3,
                },
            )
            .unwrap();
        first = match client.close(&sid).unwrap() {
            CloseReply::Committed(o) => serial::outcome_to_json(&o),
            CloseReply::Aborted(r) => panic!("unexpected abort: {r}"),
        };
    }
    let daemon = Daemon::start(DaemonConfig::new(journal)).unwrap();
    assert_eq!(daemon.recovery().sessions, 1);
    // The close committed before shutdown, so nothing needed re-solving.
    assert_eq!(daemon.recovery().replayed_closes, 0);
    assert_eq!(daemon.recovery().truncated_bytes, 0);
    let mut client = fast_client(daemon.addr());
    match client.outcome("s-1").unwrap() {
        CloseReply::Committed(o) => assert_eq!(serial::outcome_to_json(&o), first),
        CloseReply::Aborted(r) => panic!("lost the commit across restart: {r}"),
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate keeps the workspace's property tests
//! running by implementing the subset of the API they use as a
//! *deterministic generate-and-check* harness:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * numeric range strategies, tuples, [`prop::collection::vec`],
//!   [`any`], and a tiny `".{a,b}"` string-pattern strategy,
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning structured failures.
//!
//! Differences from the real crate, on purpose and documented:
//!
//! * **No shrinking.** A failing case reports its exact inputs instead; the
//!   seed stream is deterministic (derived from the test's module path and
//!   name), so failures reproduce on every run.
//! * **No `proptest-regressions` replay.** Regression files remain checked
//!   in as documentation of past counterexamples; pinned cases are kept
//!   alive as ordinary `#[test]`s in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, RngExt as _, SeedableRng as _};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Mirrors the `proptest::prop` module tree (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::{vec, SizeRange, VecStrategy};
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property check (produced by [`prop_assert!`] and friends).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The harness's deterministic random source.
///
/// Seeded from a stable hash of the test's fully qualified name, so every
/// run of a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator keyed to `name` (use `module_path!()::test_name`).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator. The stand-in collapses proptest's value trees to
/// plain generation (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        )
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident $v:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A a);
impl_tuple_strategy!(A a, B b);
impl_tuple_strategy!(A a, B b, C c);
impl_tuple_strategy!(A a, B b, C c, D d);
impl_tuple_strategy!(A a, B b, C c, D d, E e);
impl_tuple_strategy!(A a, B b, C c, D d, E e, F f);
impl_tuple_strategy!(A a, B b, C c, D d, E e, F f, G g);
impl_tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h);

/// Pattern-string strategy: `".{a,b}"` draws `a..=b` arbitrary characters.
///
/// Anything else falls back to 0–64 arbitrary characters. This covers the
/// workspace's "feed the parser garbage" tests without a regex engine; the
/// alphabet deliberately includes newlines, quotes and multi-byte
/// characters.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        const ALPHABET: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '\n', '.', ',', ';', ':', '-', '_',
            '#', '"', '\'', '/', '\\', '(', ')', '{', '}', '[', ']', '+', '*', '%', '=', '<', '>',
            '|', '~', '!', '?', '@', 'é', 'λ', '∞', '🦀',
        ];
        let (lo, hi) = parse_char_count(self).unwrap_or((0, 64));
        let len = rng.0.random_range(lo..=hi);
        (0..len)
            .map(|_| ALPHABET[(rng.next_u64() % ALPHABET.len() as u64) as usize])
            .collect()
    }
}

/// Extracts `(a, b)` from a `".{a,b}"` pattern.
fn parse_char_count(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, spanning several orders of magnitude.
        let mantissa = rng.0.random_range(-1.0..=1.0);
        let exp = rng.0.random_range(-8i32..=8);
        mantissa * f64::powi(10.0, exp)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt as _;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element`-generated values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Declares property tests.
///
/// Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0u32..10, v in prop::collection::vec(0f64..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str(stringify!($arg));
                    __inputs.push_str(" = ");
                    __inputs.push_str(&::std::format!("{:?}", &$arg));
                    __inputs.push_str("; ");
                )+
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __result {
                    ::core::panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __config.cases,
                        __e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l,
                __r,
                ::std::format!($($fmt)*)
            )));
        }
    }};
}

/// Skips the rest of the current case when `cond` is false (the stand-in
/// treats a violated assumption as a vacuously passing case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{collection, TestRng};

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::deterministic("shim::ranges");
        for _ in 0..200 {
            let x = Strategy::generate(&(3u32..7), &mut rng);
            assert!((3..7).contains(&x));
            let y = Strategy::generate(&(0.5f64..=2.0), &mut rng);
            assert!((0.5..=2.0).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic("shim::vec");
        for _ in 0..100 {
            let v = Strategy::generate(&collection::vec(0u32..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn string_pattern_counts_chars() {
        let mut rng = TestRng::deterministic("shim::string");
        for _ in 0..100 {
            let s = Strategy::generate(&".{2,10}", &mut rng);
            let n = s.chars().count();
            assert!((2..=10).contains(&n), "{n} chars");
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let a = Strategy::generate(&(0u64..u64::MAX), &mut TestRng::deterministic("same"));
        let b = Strategy::generate(&(0u64..u64::MAX), &mut TestRng::deterministic("same"));
        let c = Strategy::generate(&(0u64..u64::MAX), &mut TestRng::deterministic("other"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(
            x in 1u32..100,
            v in prop::collection::vec(0f64..1.0, 1..4),
            flip in any::<bool>(),
        ) {
            prop_assert!(x >= 1);
            prop_assert!(v.iter().all(|p| (0.0..1.0).contains(p)));
            prop_assert_eq!(flip, flip);
        }

        #[test]
        fn flat_map_composes(pair in (2usize..5, 1usize..3).prop_flat_map(|(n, m)| {
            (collection::vec(0u32..10, n..=n), collection::vec(0u32..10, m..=m))
        })) {
            let (a, b) = pair;
            prop_assert!(a.len() >= 2 && a.len() < 5);
            prop_assert!(!b.is_empty() && b.len() < 3);
        }
    }

    #[test]
    #[should_panic(expected = "inputs: x = ")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}

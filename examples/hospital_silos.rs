//! Cross-silo federation: a handful of hospitals jointly train a triage
//! model. Small `I` makes the *exact* optimum computable, so this example
//! shows the full comparison the paper's Fig. 4 makes — `A_FL` versus the
//! three benchmarks versus OPT — on one concrete instance, plus the
//! payments that make truthful bidding rational for the hospitals.
//!
//! ```sh
//! cargo run --release --example hospital_silos
//! ```

use fl_procurement::auction::{
    run_auction_with, AWinner, AuctionConfig, Bid, ClientProfile, Instance, Round, Window,
};
use fl_procurement::baselines::{FcfsBaseline, GreedyBaseline, OnlineBaseline};
use fl_procurement::exact::ExactSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 hospitals; the consortium needs K = 2 sites training in each of up
    // to T = 8 federation rounds. Hospitals differ in compute (GPU cluster
    // vs workstation), data quality (achievable θ) and availability
    // (maintenance windows).
    let config = AuctionConfig::builder()
        .max_rounds(8)
        .clients_per_round(2)
        .round_time_limit(80.0)
        .build()?;
    let mut instance = Instance::new(config);
    // name, t_cmp, t_com, claimed cost, θ, window, rounds
    type Hospital = (&'static str, f64, f64, f64, f64, (u32, u32), u32);
    let hospitals: [Hospital; 8] = [
        // name, t_cmp, t_com, claimed cost, θ, window, rounds
        ("St. Mary (GPU cluster)", 3.0, 8.0, 40.0, 0.40, (1, 8), 8),
        ("County General", 6.0, 10.0, 22.0, 0.60, (1, 8), 6),
        ("Lakeside Clinic", 8.0, 12.0, 14.0, 0.75, (2, 8), 5),
        ("University Hospital", 4.0, 9.0, 35.0, 0.45, (1, 6), 6),
        ("Riverside", 7.0, 11.0, 18.0, 0.70, (3, 8), 4),
        ("Hilltop Medical", 9.0, 13.0, 10.0, 0.80, (1, 5), 3),
        ("Northgate", 6.5, 10.5, 20.0, 0.65, (2, 7), 5),
        ("Bayview", 8.5, 12.5, 12.0, 0.78, (4, 8), 4),
    ];
    for (name, t_cmp, t_com, cost, theta, (a, d), rounds) in hospitals {
        let c = instance.add_client(ClientProfile::new(t_cmp, t_com)?);
        instance.add_bid(
            c,
            Bid::new(cost, theta, Window::new(Round(a), Round(d)), rounds)?,
        )?;
        println!("registered {name}: cost {cost}, θ = {theta}, window [{a},{d}] × {rounds}");
    }

    println!("\nmechanism comparison (same outer T_g enumeration for all):");
    let opt = run_auction_with(&instance, &ExactSolver::new())?;
    let results = [
        ("A_FL   ", run_auction_with(&instance, &AWinner::new())?),
        (
            "Greedy ",
            run_auction_with(&instance, &GreedyBaseline::new())?,
        ),
        (
            "A_online",
            run_auction_with(&instance, &OnlineBaseline::new())?,
        ),
        (
            "FCFS   ",
            run_auction_with(&instance, &FcfsBaseline::new())?,
        ),
        ("OPT    ", opt),
    ];
    let opt_cost = results.last().unwrap().1.social_cost();
    for (name, outcome) in &results {
        println!(
            "  {name} T_g = {} cost = {:>6.1}  ratio vs OPT = {:.3}",
            outcome.horizon(),
            outcome.social_cost(),
            outcome.social_cost() / opt_cost
        );
        let violations = fl_procurement::auction::verify::outcome_violations(&instance, outcome);
        assert!(violations.is_empty(), "{name} infeasible: {violations:?}");
    }

    println!("\nA_FL payments (critical value ⇒ truthful, individually rational):");
    let afl = &results[0].1;
    for w in afl.solution().winners() {
        let name = hospitals[w.bid_ref.client.index()].0;
        println!(
            "  {name:<24} claimed {:>5.1}, paid {:>6.2}, utility {:>5.2}",
            w.price,
            w.payment,
            w.utility()
        );
        assert!(w.payment >= w.price - 1e-9);
    }
    Ok(())
}

//! Dropout stress test — the paper's future-work scenario (§VIII):
//! "clients drop out with high probability since the network connection
//! (4G or WiFi) can be unstable".
//!
//! Buys a schedule with the auction, then executes it under increasing
//! dropout rates and reports how coverage and convergence degrade — the
//! quantitative backdrop for why over-provisioning (K above the model's
//! true need) buys robustness.
//!
//! ```sh
//! cargo run --release --example dropout_stress
//! ```

use fl_procurement::auction::run_auction;
use fl_procurement::sim::{
    DatasetSpec, DropoutModel, FaultModel, Federation, FlJob, RecoveryPolicy,
};
use fl_procurement::workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec::paper_default()
        .with_clients(200)
        .with_bids_per_client(3)
        .with_config(
            fl_procurement::auction::AuctionConfig::builder()
                .max_rounds(15)
                .clients_per_round(5)
                .round_time_limit(60.0)
                .build()?,
        );
    let instance = spec.generate(11)?;
    let outcome = run_auction(&instance)?;
    println!(
        "bought schedule: T_g = {}, {} winners, cost {:.1}",
        outcome.horizon(),
        outcome.solution().winners().len(),
        outcome.social_cost()
    );

    let federation = Federation::generate(
        &DatasetSpec {
            dim: 12,
            samples_per_client: 60,
            ..DatasetSpec::default()
        },
        instance.num_clients(),
        3,
    );

    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>10}",
        "dropout", "dropped", "min roster", "reached at", "final acc"
    );
    for rate in [0.0, 0.1, 0.3, 0.5, 0.7] {
        let mut job = FlJob::new(0.3);
        if rate > 0.0 {
            job = job.with_dropout(DropoutModel::new(rate));
        }
        let report = job.run(&instance, &outcome, &federation, 42);
        let dropped: usize = report.rounds.iter().map(|r| r.dropped.len()).sum();
        let min_roster = report
            .rounds
            .iter()
            .map(|r| r.participants.len())
            .min()
            .unwrap_or(0);
        println!(
            "{:>7.0}% {:>10} {:>12} {:>12} {:>9.1}%",
            rate * 100.0,
            dropped,
            min_roster,
            report
                .reached_at
                .map(|t| t.to_string())
                .unwrap_or_else(|| "never".into()),
            100.0 * report.final_accuracy
        );
    }
    println!(
        "\nreading: the auction staffed every round with K = {} clients;\n\
         as dropout grows, effective rosters shrink and convergence slows —\n\
         the robustness margin the paper's future work asks for.",
        instance.config().clients_per_round()
    );

    // Second act: the same stress, but the server repairs each gap from
    // the auction's critically-priced standby pool (hybrid: free retries
    // first, then paid substitution).
    let pool = outcome.standby_pool(&instance);
    println!(
        "\nstandby pool: {} ranked backups in the thinnest round",
        pool.min_depth()
    );
    println!(
        "\n{:>8} {:>10} {:>14} {:>14} {:>13} {:>12}",
        "dropout", "policy", "coverage", "SLA rounds", "repair spend", "reached at"
    );
    for rate in [0.3, 0.5, 0.7] {
        for (name, policy) in [
            ("none", RecoveryPolicy::None),
            (
                "hybrid",
                RecoveryPolicy::Hybrid {
                    max_attempts: 2,
                    backoff: 5.0,
                },
            ),
        ] {
            let report = FlJob::new(0.3)
                .with_faults(FaultModel::bernoulli(rate))
                .with_recovery(policy)
                .run(&instance, &outcome, &federation, 42);
            println!(
                "{:>7.0}% {:>10} {:>13.1}% {:>13.1}% {:>13.1} {:>12}",
                rate * 100.0,
                name,
                100.0 * report.coverage_ratio,
                100.0 * report.sla_met_fraction,
                report.repair_spend,
                report
                    .reached_at
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "never".into()),
            );
        }
    }
    println!(
        "\nreading: hybrid recovery holds per-round coverage at the floor the\n\
         model needs, paying only the standby pool's committed critical values\n\
         for the rounds that actually broke — runtime repair instead of\n\
         up-front over-provisioning."
    );
    Ok(())
}

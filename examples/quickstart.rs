//! Quickstart: run the paper's auction end to end on a hand-built
//! instance and print the announced result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fl_procurement::auction::{
    run_auction, AuctionConfig, Bid, ClientProfile, Instance, Round, Window,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The server announces: at most T = 10 global iterations, K = 2
    // clients must train in every iteration, each iteration must fit in
    // 60 time units.
    let config = AuctionConfig::builder()
        .max_rounds(10)
        .clients_per_round(2)
        .round_time_limit(60.0)
        .build()?;
    let mut instance = Instance::new(config);

    // Five phones register; each submits one sealed bid:
    // (claimed cost, local accuracy θ, availability window, rounds offered).
    let offers = [
        (22.0, 0.50, (1, 10), 10), // accurate, always on, pricey
        (12.0, 0.70, (1, 6), 5),   // mid
        (9.0, 0.80, (2, 10), 8),   // coarse accuracy, cheap
        (15.0, 0.60, (4, 10), 6),  // evening-only
        (11.0, 0.75, (1, 5), 4),   // morning-only
    ];
    for (price, theta, (a, d), rounds) in offers {
        let client = instance.add_client(ClientProfile::new(5.0, 10.0)?);
        let bid = Bid::new(price, theta, Window::new(Round(a), Round(d)), rounds)?;
        instance.add_bid(client, bid)?;
    }

    // Run A_FL: it enumerates the admissible horizons, greedily solves
    // each winner-determination problem, and pays critical values.
    let outcome = run_auction(&instance)?;
    println!(
        "chosen number of global iterations T_g = {}",
        outcome.horizon()
    );
    println!("social cost = {:.2}", outcome.social_cost());
    println!("total payout = {:.2}", outcome.solution().total_payment());
    for w in outcome.solution().winners() {
        println!(
            "  {} wins at claimed cost {:>5.2}, paid {:>5.2}, serves rounds {:?}",
            w.bid_ref,
            w.price,
            w.payment,
            w.schedule.iter().map(|r| r.0).collect::<Vec<_>>()
        );
    }

    // The dual certificate bounds how far the greedy is from optimal.
    if let Some(cert) = outcome.solution().certificate() {
        println!(
            "approximation certificate: cost ≤ {:.3} × OPT (H·ω bound)",
            cert.ratio_bound()
        );
    }

    // Independently re-verify every ILP (6) constraint.
    let violations = fl_procurement::auction::verify::outcome_violations(&instance, &outcome);
    assert!(
        violations.is_empty(),
        "outcome must be feasible: {violations:?}"
    );
    println!("outcome verified feasible; all winners individually rational");
    Ok(())
}

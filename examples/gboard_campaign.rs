//! Gboard-style campaign: a mobile-keyboard model is trained across a
//! heterogeneous smartphone fleet, with participation bought through the
//! paper's procurement auction and the resulting schedule executed by the
//! FedAvg simulator.
//!
//! This is the scenario the paper's introduction motivates (next-word
//! prediction on phones): flagship phones are fast-but-expensive, budget
//! phones cheap-but-slow; the auction balances the two while the number of
//! global iterations adapts to the winners' local accuracies.
//!
//! ```sh
//! cargo run --release --example gboard_campaign
//! ```

use fl_procurement::auction::run_auction;
use fl_procurement::sim::{DataSkew, DatasetSpec, Federation, FlJob};
use fl_procurement::workload::{DeviceMix, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 300 phones, 3 bids each, over a 20-round campaign needing K = 4
    // phones per round.
    let spec = WorkloadSpec::paper_default()
        .with_clients(300)
        .with_bids_per_client(3)
        .with_config(
            fl_procurement::auction::AuctionConfig::builder()
                .max_rounds(20)
                .clients_per_round(4)
                .round_time_limit(60.0)
                .build()?,
        );
    let mix = DeviceMix::smartphone_fleet();
    let (instance, classes) = mix.generate(&spec, 2024)?;
    println!(
        "fleet: {} phones ({} bids) across {} device classes",
        instance.num_clients(),
        instance.num_bids(),
        mix.classes().len()
    );

    // -- Auction --------------------------------------------------------
    let outcome = run_auction(&instance)?;
    println!(
        "auction: T_g = {}, social cost {:.1}, payout {:.1}, {} winners",
        outcome.horizon(),
        outcome.social_cost(),
        outcome.solution().total_payment(),
        outcome.solution().winners().len()
    );
    // Which classes won?
    let mut per_class = vec![0usize; mix.classes().len()];
    for w in outcome.solution().winners() {
        per_class[classes[w.bid_ref.client.index()]] += 1;
    }
    for (class, &n) in mix.classes().iter().zip(&per_class) {
        println!("  {:<9} {n} winners", class.name);
    }

    // -- Federated training over the bought schedule ---------------------
    // Keyboard data is naturally non-IID (every user types differently).
    let federation = Federation::generate(
        &DatasetSpec {
            dim: 16,
            samples_per_client: 80,
            label_noise: 0.05,
            skew: DataSkew::Shifted { magnitude: 0.5 },
        },
        instance.num_clients(),
        7,
    );
    let report = FlJob::new(0.25).run(&instance, &outcome, &federation, 99);
    println!(
        "training: ran {} rounds, simulated wall clock {:.0} time units",
        report.rounds.len(),
        report.total_wall_clock
    );
    match report.reached_at {
        Some(t) => println!("  global accuracy target reached at round {t} (within T_g ✓)"),
        None => println!(
            "  target not reached within T_g; final relative ‖∇J‖ = {:.3}",
            report
                .rounds
                .last()
                .map(|r| r.grad_norm)
                .unwrap_or(f64::NAN)
                / report.initial_grad_norm
        ),
    }
    println!(
        "  final keyboard-model accuracy on participants' data: {:.1}%",
        100.0 * report.final_accuracy
    );
    Ok(())
}

//! Overnight chargers: the full "realistic fleet" stack in one scenario.
//!
//! Availability is diurnal (most phones train while charging overnight, a
//! smaller lunch-break cohort at midday), participation budgets come from
//! batteries instead of uniform draws, and execution suffers hardware
//! jitter — every future-work concern from §VIII plus the battery
//! grounding of §IV-B, layered on the paper's mechanism.
//!
//! ```sh
//! cargo run --release --example overnight_chargers
//! ```

use fl_procurement::auction::{run_auction, AuctionConfig};
use fl_procurement::sim::{Battery, DatasetSpec, EnergyModel, Federation, FlJob, StragglerModel};
use fl_procurement::workload::{BatteryWorkload, DiurnalWorkload, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = WorkloadSpec::paper_default()
        .with_clients(400)
        .with_bids_per_client(2)
        .with_config(
            AuctionConfig::builder()
                .max_rounds(24)
                .clients_per_round(4)
                .round_time_limit(60.0)
                .build()?,
        );

    // --- Diurnal availability ------------------------------------------
    let diurnal = DiurnalWorkload::two_peak(base.clone());
    let instance = diurnal.generate(2026)?;
    println!(
        "diurnal fleet: {} phones, {} bids over a {}-round day",
        instance.num_clients(),
        instance.num_bids(),
        instance.config().max_rounds()
    );
    // How thin does supply get off-peak?
    let mut per_round = vec![0u32; instance.config().max_rounds() as usize];
    for (_, bid) in instance.iter_bids() {
        for t in bid.window().rounds() {
            per_round[t.index()] += 1;
        }
    }
    let min_supply = per_round.iter().min().copied().unwrap_or(0);
    let max_supply = per_round.iter().max().copied().unwrap_or(0);
    println!("per-round bid supply ranges {min_supply}..{max_supply} (clustered, not uniform)");

    match run_auction(&instance) {
        Ok(outcome) => {
            println!(
                "auction: T_g = {}, cost {:.1}, {} winners",
                outcome.horizon(),
                outcome.social_cost(),
                outcome.solution().winners().len()
            );
            // --- Execute with hardware jitter ---------------------------
            let federation =
                Federation::generate(&DatasetSpec::default(), instance.num_clients(), 5);
            let report = FlJob::new(0.3).with_stragglers(StragglerModel::mild()).run(
                &instance,
                &outcome,
                &federation,
                7,
            );
            let late: usize = report.rounds.iter().map(|r| r.late.len()).sum();
            let on_time: usize = report.rounds.iter().map(|r| r.participants.len()).sum();
            println!(
                "execution under jitter: {on_time} on-time updates, {late} missed the deadline"
            );
            println!(
                "final accuracy {:.1}% (target {})",
                100.0 * report.final_accuracy,
                report
                    .reached_at
                    .map(|t| format!("hit at round {t}"))
                    .unwrap_or_else(|| "not reached".into())
            );
        }
        Err(e) => println!("auction infeasible on this fleet: {e} (off-peak rounds starve)"),
    }

    // --- Battery-grounded round counts ----------------------------------
    let battery = BatteryWorkload {
        spec: base,
        energy: EnergyModel::smartphone(),
        capacity: (100.0, 500.0),
    };
    let (b_inst, batteries) = battery.generate(9)?;
    let offered: u32 = b_inst.iter_bids().map(|(_, b)| b.rounds()).sum();
    println!(
        "\nbattery fleet: {} bids offering {offered} rounds total (derived from charge levels)",
        b_inst.num_bids()
    );
    // Show the §IV-B derivation for one client.
    if let Some((r, bid)) = b_inst.iter_bids().next() {
        let profile = &b_inst.clients()[r.client.index()];
        let per_round = EnergyModel::smartphone().round_energy(
            b_inst.config().local_model(),
            profile,
            bid.accuracy(),
        );
        let battery: &Battery = &batteries[r.client.index()];
        println!(
            "  e.g. {}: battery {:.0} / {:.1} energy-per-round → offers {} rounds",
            r,
            battery.capacity(),
            per_round,
            bid.rounds()
        );
    }
    let outcome = run_auction(&b_inst)?;
    println!(
        "battery-fleet auction: T_g = {}, cost {:.1} (verified: {})",
        outcome.horizon(),
        outcome.social_cost(),
        fl_procurement::auction::verify::outcome_violations(&b_inst, &outcome).is_empty()
    );
    Ok(())
}

//! `flp` — command-line front end for the fl-procurement reproduction.
//!
//! ```text
//! flp auction   [--clients N] [--bids J] [--rounds T] [--per-round K] [--seed S]
//!               [--cost-model uniform|timeprop] [--algo afl|greedy|online|fcfs]
//!               [--instance FILE]
//! flp sweep     [same flags]            # per-horizon costs (Fig. 7 style)
//! flp simulate  [same flags] [--epsilon E] [--dropout P]
//! flp payments  [same flags]            # winner payments + IR check
//! flp generate  [workload flags] --out FILE   # save an instance as text
//! ```
//!
//! Argument parsing is deliberately dependency-free (no clap in the
//! offline crate set); flags may appear in any order.

use std::process::ExitCode;

use fl_procurement::auction::{
    analysis, run_auction_with, sweep_horizons, verify, AWinner, AuctionConfig, AuctionOutcome,
    Instance, WdpSolver,
};
use fl_procurement::baselines::{FcfsBaseline, GreedyBaseline, OnlineBaseline};
use fl_procurement::sim::{DatasetSpec, DropoutModel, Federation, FlJob};
use fl_procurement::workload::{CostModel, WorkloadSpec};

struct Options {
    clients: usize,
    bids: u32,
    rounds: u32,
    per_round: u32,
    seed: u64,
    cost_model: CostModel,
    algo: String,
    epsilon: f64,
    dropout: f64,
    instance: Option<String>,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            clients: 300,
            bids: 4,
            rounds: 20,
            per_round: 5,
            seed: 1,
            cost_model: CostModel::UniformTotal,
            algo: "afl".into(),
            epsilon: 0.3,
            dropout: 0.0,
            instance: None,
            out: None,
        }
    }
}

fn usage() -> &'static str {
    "usage: flp <auction|sweep|simulate|payments|generate> [flags]\n\
     flags: --clients N --bids J --rounds T --per-round K --seed S\n\
            --cost-model uniform|timeprop --algo afl|greedy|online|fcfs\n\
            --epsilon E --dropout P --instance FILE --out FILE"
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--clients" => o.clients = value()?.parse().map_err(|e| format!("--clients: {e}"))?,
            "--bids" => o.bids = value()?.parse().map_err(|e| format!("--bids: {e}"))?,
            "--rounds" => o.rounds = value()?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--per-round" => {
                o.per_round = value()?.parse().map_err(|e| format!("--per-round: {e}"))?
            }
            "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--instance" => o.instance = Some(value()?),
            "--out" => o.out = Some(value()?),
            "--epsilon" => o.epsilon = value()?.parse().map_err(|e| format!("--epsilon: {e}"))?,
            "--dropout" => o.dropout = value()?.parse().map_err(|e| format!("--dropout: {e}"))?,
            "--cost-model" => {
                o.cost_model = match value()?.as_str() {
                    "uniform" => CostModel::UniformTotal,
                    "timeprop" => CostModel::TimeProportional { unit: (0.5, 2.5) },
                    other => return Err(format!("unknown cost model '{other}'")),
                }
            }
            "--algo" => {
                let v = value()?;
                if !["afl", "greedy", "online", "fcfs"].contains(&v.as_str()) {
                    return Err(format!("unknown algorithm '{v}'"));
                }
                o.algo = v;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(o)
}

fn build_instance(o: &Options) -> Result<Instance, String> {
    if let Some(path) = &o.instance {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        return fl_procurement::auction::io::read_instance(std::io::BufReader::new(file))
            .map_err(|e| e.to_string());
    }
    let cfg = AuctionConfig::builder()
        .max_rounds(o.rounds)
        .clients_per_round(o.per_round)
        .round_time_limit(60.0)
        .build()
        .map_err(|e| e.to_string())?;
    WorkloadSpec::paper_default()
        .with_clients(o.clients)
        .with_bids_per_client(o.bids)
        .with_config(cfg)
        .with_cost_model(o.cost_model)
        .generate(o.seed)
        .map_err(|e| e.to_string())
}

fn run_algo(o: &Options, inst: &Instance) -> Result<AuctionOutcome, String> {
    let outcome = match o.algo.as_str() {
        "afl" => run_auction_with(inst, &AWinner::new()),
        "greedy" => run_auction_with(inst, &GreedyBaseline::new()),
        "online" => run_auction_with(inst, &OnlineBaseline::new()),
        "fcfs" => run_auction_with(inst, &FcfsBaseline::new()),
        _ => unreachable!("validated in parse"),
    };
    outcome.map_err(|e| e.to_string())
}

fn cmd_auction(o: &Options) -> Result<(), String> {
    let inst = build_instance(o)?;
    let outcome = run_algo(o, &inst)?;
    let stats = analysis::outcome_stats(&inst, &outcome);
    let breakdown = analysis::cost_breakdown(&inst, &outcome);
    println!("algorithm        {}", o.algo);
    println!(
        "instance         I={} bids={} T={} K={}",
        inst.num_clients(),
        inst.num_bids(),
        o.rounds,
        o.per_round
    );
    println!("chosen T_g       {}", outcome.horizon());
    println!("social cost      {:.2}", stats.social_cost);
    println!(
        "total payment    {:.2} (overhead {:.3}x)",
        stats.total_payment, stats.payment_overhead
    );
    println!(
        "winners          {} (avg {:.1} rounds each)",
        stats.winners, stats.mean_rounds_per_winner
    );
    println!("surplus rounds   {}", stats.surplus_participations);
    println!(
        "cost split       {:.0}% computation / {:.0}% communication",
        100.0 * breakdown.computation_share(),
        100.0 * (1.0 - breakdown.computation_share())
    );
    let violations = verify::outcome_violations(&inst, &outcome);
    if violations.is_empty() {
        println!("verification     OK (all ILP(6) constraints satisfied)");
        Ok(())
    } else {
        Err(format!("outcome failed verification: {violations:?}"))
    }
}

fn cmd_sweep(o: &Options) -> Result<(), String> {
    let inst = build_instance(o)?;
    let solver: Box<dyn WdpSolver + Sync> = match o.algo.as_str() {
        "afl" => Box::new(AWinner::new().without_certificate()),
        "greedy" => Box::new(GreedyBaseline::new()),
        "online" => Box::new(OnlineBaseline::new()),
        "fcfs" => Box::new(FcfsBaseline::new()),
        _ => unreachable!(),
    };
    println!("T_g  qualified  cost");
    for h in sweep_horizons(&inst, &solver.as_ref()).map_err(|e| e.to_string())? {
        match h.result {
            Ok(sol) => println!("{:>3}  {:>9}  {:.1}", h.horizon, h.qualified, sol.cost()),
            Err(e) => println!("{:>3}  {:>9}  ({e})", h.horizon, h.qualified),
        }
    }
    Ok(())
}

fn cmd_simulate(o: &Options) -> Result<(), String> {
    let inst = build_instance(o)?;
    let outcome = run_algo(o, &inst)?;
    let federation = Federation::generate(&DatasetSpec::default(), inst.num_clients(), o.seed);
    let mut job = FlJob::new(o.epsilon);
    if o.dropout > 0.0 {
        job = job.with_dropout(DropoutModel::new(o.dropout));
    }
    let report = job.run(&inst, &outcome, &federation, o.seed);
    println!("rounds run       {}", report.rounds.len());
    println!("wall clock       {:.0} time units", report.total_wall_clock);
    match report.reached_at {
        Some(t) => println!("target ε={} hit  at round {t}", o.epsilon),
        None => println!(
            "target ε={} not reached (final relative grad {:.3})",
            o.epsilon,
            report
                .rounds
                .last()
                .map(|r| r.grad_norm)
                .unwrap_or(f64::NAN)
                / report.initial_grad_norm
        ),
    }
    println!("final accuracy   {:.1}%", 100.0 * report.final_accuracy);
    let dropped: usize = report.rounds.iter().map(|r| r.dropped.len()).sum();
    if o.dropout > 0.0 {
        println!("dropped          {dropped} participations");
    }
    Ok(())
}

fn cmd_payments(o: &Options) -> Result<(), String> {
    let inst = build_instance(o)?;
    let outcome = run_algo(o, &inst)?;
    println!(
        "{:<14} {:>10} {:>10} {:>9}",
        "winner", "claimed", "paid", "utility"
    );
    for w in outcome.solution().winners() {
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>9.2}",
            w.bid_ref.to_string(),
            w.price,
            w.payment,
            w.utility()
        );
    }
    let bad = verify::ir_violations(outcome.solution());
    if bad.is_empty() {
        println!("individual rationality: OK");
        Ok(())
    } else {
        Err(format!("IR violations: {bad:?}"))
    }
}

fn cmd_generate(o: &Options) -> Result<(), String> {
    let Some(path) = &o.out else {
        return Err("generate requires --out FILE".into());
    };
    let inst = build_instance(o)?;
    let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    fl_procurement::auction::io::write_instance(&inst, std::io::BufWriter::new(file))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {path}: {} clients, {} bids, T={}, K={}",
        inst.num_clients(),
        inst.num_bids(),
        inst.config().max_rounds(),
        inst.config().clients_per_round()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match parse(rest) {
        Err(e) => Err(e),
        Ok(o) => match cmd.as_str() {
            "auction" => cmd_auction(&o),
            "sweep" => cmd_sweep(&o),
            "simulate" => cmd_simulate(&o),
            "payments" => cmd_payments(&o),
            "generate" => cmd_generate(&o),
            "help" | "--help" | "-h" => {
                println!("{}", usage());
                Ok(())
            }
            other => Err(format!("unknown command '{other}'\n{}", usage())),
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

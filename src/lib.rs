//! `fl-procurement` — umbrella crate of the reproduction of Zhou et al.,
//! *"A Truthful Procurement Auction for Incentivizing Heterogeneous
//! Clients in Federated Learning"* (ICDCS 2021).
//!
//! Re-exports the workspace crates under stable module names so examples
//! and downstream users can depend on a single crate:
//!
//! * [`auction`] — the mechanism itself (`A_FL`, `A_winner`, payments,
//!   dual certificates, verification);
//! * [`baselines`] — FCFS, Greedy and `A_online` benchmarks;
//! * [`exact`] — exact winner determination (branch-and-bound, max-flow,
//!   LP relaxations);
//! * [`lp`] — the two-phase simplex LP solver substrate;
//! * [`sim`] — the federated-learning simulator that executes auction
//!   outcomes;
//! * [`telemetry`] — structured spans, metrics and pluggable sinks behind
//!   every crate's instrumentation (inert until a sink is installed);
//! * [`workload`] — seeded instance generators (paper setup and device
//!   fleets).
//!
//! # Quickstart
//!
//! ```
//! use fl_procurement::auction::{
//!     run_auction, AuctionConfig, Bid, ClientProfile, Instance, Round, Window,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = AuctionConfig::builder()
//!     .max_rounds(6)
//!     .clients_per_round(1)
//!     .build()?;
//! let mut instance = Instance::new(config);
//! for price in [8.0, 5.0, 11.0] {
//!     let c = instance.add_client(ClientProfile::new(4.0, 8.0)?);
//!     instance.add_bid(c, Bid::new(price, 0.6, Window::new(Round(1), Round(6)), 6)?)?;
//! }
//! let outcome = run_auction(&instance)?;
//! assert_eq!(outcome.social_cost(), 5.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the architecture overview and `EXPERIMENTS.md` for
//! the paper-versus-measured record of every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fl_auction as auction;
pub use fl_baselines as baselines;
pub use fl_exact as exact;
pub use fl_lp as lp;
pub use fl_sim as sim;
pub use fl_telemetry as telemetry;
pub use fl_workload as workload;
